//! The distributed-monitoring benchmark: merged-stream throughput versus
//! worker count, supervised recovery latency, and the **transport
//! crossover matrix**, recorded as `BENCH_distributed.json`.
//!
//! The fleet under test is the real thing: `privacy-shardd` worker
//! *processes* (found next to this executable unless `--worker` overrides
//! it) spawned by a [`DistributedMonitor`], speaking framed messages over
//! pipes, checkpointing to disk. Per worker count the benchmark launches a
//! fresh fleet, routes the scenario's event stream through it in batches,
//! and reports events/sec for the fully merged (deterministically ordered)
//! alert stream. A separate run arms a kill-mid-stream fault and reports
//! the supervised recovery latency — death detection to caught-up
//! replacement — exercising checkpoint resume and suffix replay.
//!
//! The crossover matrix sweeps synthetic model weight × worker count ×
//! duty cycle and records, per cell, the fleet's speedup over an
//! in-process [`IndexedMonitor`] run under the **same duty**. Two duties:
//!
//! * `stream` — pure ingestion, no durability. Framing and pipe transport
//!   are pure overhead here; on a single-core host the fleet honestly
//!   loses, and the matrix records by how much.
//! * `durable` — a checkpoint after every batch, both sides. The
//!   in-process monitor pays every snapshot-encode + fsync inline; the
//!   fleet's asynchronous checkpoint path overlaps each worker's fsync
//!   with the supervisor's routing and the other workers' evaluation.
//!   This is where the transport earns its keep: the crossover rows
//!   (speedup > 1.0 at 2+ workers) live here, and `--require-crossover`
//!   gates CI on at least one existing.
//!
//! Before anything is timed, the merged alert stream of a 2-worker fleet is
//! proven **identical** to the single-process [`IndexedMonitor`] run over
//! the same batches — the distributed layer may only ever change *where*
//! monitoring happens, never what it says. The sweep re-checks this
//! equality for every cell.
//!
//! ```text
//! distributed_scaling [--quick] [--workers LIST] [--min-workers N]
//!                     [--min-events-per-sec X] [--require-crossover]
//!                     [--worker PATH] [--out PATH] [--force-baseline]
//! ```
//!
//! See `docs/PERFORMANCE.md` for the recorded baseline.

use privacy_bench::write_report;
use privacy_core::{casestudy, PrivacySystem};
use privacy_distrib::{
    CheckpointStore, DistribStats, DistributedMonitor, FaultPlan, SupervisorConfig,
};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, ModelError, Record, ServiceId, UserProfile};
use privacy_runtime::{Alert, Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, ModelGeneratorConfig, ProfileGeneratorConfig,
    WorkloadConfig,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 256;
/// Batch size of the crossover sweep: smaller batches mean more durable
/// checkpoints over the same stream, which is exactly the duty the sweep
/// probes.
const SWEEP_BATCH: usize = 512;

struct Options {
    quick: bool,
    workers: Vec<usize>,
    min_workers: usize,
    min_events_per_sec: f64,
    require_crossover: bool,
    worker: Option<PathBuf>,
    out: String,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        workers: Vec::new(),
        min_workers: 0,
        min_events_per_sec: 0.0,
        require_crossover: false,
        worker: None,
        out: "BENCH_distributed.json".to_owned(),
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--require-crossover" => options.require_crossover = true,
            "--workers" => {
                let value = args.next().ok_or("--workers needs a comma-separated list")?;
                options.workers = value
                    .split(',')
                    .map(|part| part.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --workers list `{value}`"))?;
            }
            "--min-workers" => {
                let value = args.next().ok_or("--min-workers needs a value")?;
                options.min_workers =
                    value.parse().map_err(|_| format!("bad --min-workers value `{value}`"))?;
            }
            "--min-events-per-sec" => {
                let value = args.next().ok_or("--min-events-per-sec needs a value")?;
                options.min_events_per_sec = value
                    .parse()
                    .map_err(|_| format!("bad --min-events-per-sec value `{value}`"))?;
            }
            "--worker" => {
                options.worker = Some(PathBuf::from(args.next().ok_or("--worker needs a path")?));
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.workers.is_empty() {
        options.workers = if options.quick { vec![1, 2] } else { vec![1, 2, 4] };
    }
    Ok(options)
}

/// The `privacy-shardd` binary: explicit path, or the one built next to us.
fn worker_program(options: &Options) -> Result<PathBuf, String> {
    if let Some(path) = &options.worker {
        return Ok(path.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("locating this executable: {e}"))?;
    let sibling = me.with_file_name("privacy-shardd");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!("no worker binary at {} — pass --worker PATH", sibling.display()))
    }
}

struct Scenario {
    name: &'static str,
    system: PrivacySystem,
    fingerprint: u64,
    index: Arc<LtsIndex>,
    users: Vec<UserProfile>,
    batches: Vec<Vec<Event>>,
}

/// Seeds a population against `system`, drives an engine-produced event
/// stream through it, and chunks the log into `batch`-event super-batches.
fn populate(
    name: &'static str,
    system: PrivacySystem,
    population: usize,
    requests: usize,
    batch: usize,
) -> Result<Scenario, ModelError> {
    let lts = system.generate_lts()?;
    let index = Arc::new(LtsIndex::build(&lts));
    let fingerprint = index.fingerprint();

    let services: Vec<ServiceId> = system.catalog().services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = system.catalog().fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: population,
        seed: 13,
        services: services.clone(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let events = engine.log().events().to_vec();
    let batches = events.chunks(batch).map(<[Event]>::to_vec).collect();
    Ok(Scenario { name, system, fingerprint, index, users, batches })
}

/// The paper's healthcare model with a seeded population and an
/// engine-produced event stream (the `monitor_recovery` fixture shape).
fn scenario(quick: bool) -> Result<Scenario, ModelError> {
    let system = casestudy::healthcare()?;
    let (population, requests) = if quick { (96, 3_000) } else { (192, 12_000) };
    populate("Healthcare", system, population, requests, BATCH)
}

/// A synthetic sweep scenario whose per-event evaluation cost scales with
/// `weight` (see [`ModelGeneratorConfig::heavy_evaluation`]).
fn synth_scenario(weight: usize, quick: bool) -> Result<Scenario, ModelError> {
    let (catalog, dataflows, policy) =
        random_model(&ModelGeneratorConfig::heavy_evaluation(weight))?;
    let system = PrivacySystem::new(catalog, dataflows, policy);
    // A large population is what gives the durable duty its signal: the
    // snapshot grows with users, which takes the checkpoint fsync out of its
    // fixed-cost floor and into size-dominated territory — where sharding
    // the state across workers genuinely shrinks each worker's write. The
    // populations below put the full snapshot at ~2.5 MB, where the disk
    // bill the fleet hides per checkpoint outweighs the per-event pipe
    // transport it pays for.
    let (population, requests) = if quick { (16_000, 8_000) } else { (16_000, 16_000) };
    populate("Synthetic", system, population, requests, SWEEP_BATCH)
}

fn fleet_config(
    program: &std::path::Path,
    dir_tag: &str,
    workers: usize,
    plan: FaultPlan,
) -> SupervisorConfig {
    let dir = std::env::temp_dir()
        .join(format!("privacy-distributed-bench-{dir_tag}-{}", std::process::id()));
    let mut config = SupervisorConfig::new(program, dir);
    config.workers = workers;
    config.window = 4;
    config.checkpoint_every = 8;
    config.fault_plan = plan;
    config
}

/// Launches a fleet, registers the population, streams every batch through
/// it, and returns the merged alerts, the run stats, and the ingest-phase
/// wall time (fleet launch and registration are deliberately not timed:
/// they amortise over a monitor's lifetime).
fn run_fleet(
    scenario: &Scenario,
    config: SupervisorConfig,
) -> Result<(Vec<Alert>, DistribStats, f64), String> {
    let dir = config.checkpoint_dir.clone();
    let mut monitor =
        DistributedMonitor::launch(scenario.name, &scenario.system, scenario.fingerprint, config)
            .map_err(|e| format!("launch failed: {e}"))?;
    for user in &scenario.users {
        monitor.register_user(user).map_err(|e| format!("registration failed: {e}"))?;
    }
    let started = Instant::now();
    let mut alerts = Vec::new();
    for batch in &scenario.batches {
        alerts.extend(monitor.submit_batch(batch).map_err(|e| format!("ingest failed: {e}"))?);
    }
    let (rest, stats) = monitor.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    let secs = started.elapsed().as_secs_f64();
    alerts.extend(rest);
    let _ = std::fs::remove_dir_all(dir);
    Ok((alerts, stats, secs))
}

/// The in-process comparator under a duty cycle: one [`IndexedMonitor`],
/// every batch, and — when `checkpoint_every > 0` — a full snapshot encode
/// plus fsynced [`CheckpointStore`] write every `checkpoint_every` batches,
/// exactly the durability the fleet's workers provide. Being
/// single-threaded it has nowhere to hide the fsync: the stall lands
/// inline, which is the honest baseline the crossover is measured against.
fn run_inproc(
    scenario: &Scenario,
    dir_tag: &str,
    checkpoint_every: u64,
) -> Result<(Vec<Alert>, f64), String> {
    let mut monitor = IndexedMonitor::new(
        scenario.system.catalog().clone(),
        scenario.system.policy().clone(),
        scenario.index.clone(),
    );
    for user in &scenario.users {
        monitor.register_user(user);
    }
    let dir = std::env::temp_dir()
        .join(format!("privacy-distributed-bench-inproc-{dir_tag}-{}", std::process::id()));
    let store = CheckpointStore::new(dir.join("inproc.ckpt"));
    let started = Instant::now();
    let mut alerts = Vec::new();
    for (i, batch) in scenario.batches.iter().enumerate() {
        alerts.extend(monitor.ingest_batch(batch));
        let id = i as u64 + 1;
        if checkpoint_every > 0 && id.is_multiple_of(checkpoint_every) {
            let snapshot = monitor.snapshot().to_bytes();
            store.write(&snapshot).map_err(|e| format!("in-process checkpoint failed: {e}"))?;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(dir);
    Ok((alerts, secs))
}

struct Row {
    workers: usize,
    events: usize,
    alerts: usize,
    secs: f64,
    recoveries: usize,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

struct CrossoverRow {
    weight: usize,
    duty: &'static str,
    workers: usize,
    events: usize,
    inproc_secs: f64,
    fleet_secs: f64,
}

impl CrossoverRow {
    fn speedup(&self) -> f64 {
        self.inproc_secs / self.fleet_secs
    }
}

/// The crossover matrix: model weight × worker count × duty cycle, each
/// cell the fleet's wall time against the in-process run under the same
/// duty, with the merged streams proven equal before the cell is recorded.
fn crossover_sweep(
    options: &Options,
    program: &std::path::Path,
) -> Result<Vec<CrossoverRow>, String> {
    let weights: Vec<usize> = if options.quick { vec![3] } else { vec![1, 3] };
    let worker_counts: Vec<usize> = vec![1, 2];
    // (duty, fleet + comparator checkpoint cadence in batches; 0 = never)
    // Durable duty checkpoints after every super-batch — the densest
    // durability cycle: the in-process run pays every snapshot write and
    // fsync inline, while each fleet worker's fsync rides its checkpoint
    // thread and the supervisor keeps routing the stream underneath it.
    let duties: [(&'static str, u64); 2] = [("stream", 0), ("durable", 1)];
    let mut rows = Vec::new();
    for &weight in &weights {
        let scenario = synth_scenario(weight, options.quick)
            .map_err(|e| format!("building the weight-{weight} sweep scenario: {e}"))?;
        let events: usize = scenario.batches.iter().map(Vec::len).sum();
        for (duty, checkpoint_every) in duties {
            // Every cell is best-of-`reps`: the durable legs are disk-bound
            // and a shared host's I/O jitter can swing a single run by tens
            // of percent in either direction — the minimum is the honest
            // estimate of what each side can do, and it is taken over the
            // same number of attempts for both.
            let reps = 3;
            let tag = format!("x{weight}{duty}");
            let (expected, mut inproc_secs) = run_inproc(&scenario, &tag, checkpoint_every)?;
            for _ in 1..reps {
                let (_, secs) = run_inproc(&scenario, &tag, checkpoint_every)?;
                inproc_secs = inproc_secs.min(secs);
            }
            for &workers in &worker_counts {
                let mut fleet_secs = f64::INFINITY;
                for rep in 0..reps {
                    let mut config = fleet_config(
                        program,
                        &format!("{tag}w{workers}r{rep}"),
                        workers,
                        FaultPlan::none(),
                    );
                    config.checkpoint_every = checkpoint_every;
                    let (merged, _, secs) = run_fleet(&scenario, config)?;
                    if merged != expected {
                        return Err(format!(
                            "crossover gate failed at weight {weight}, duty {duty}, {workers} \
                             workers: fleet stream diverged from the in-process run"
                        ));
                    }
                    fleet_secs = fleet_secs.min(secs);
                }
                let row = CrossoverRow { weight, duty, workers, events, inproc_secs, fleet_secs };
                eprintln!(
                    "crossover: weight {weight} duty {duty:>7} workers {workers}: in-process \
                     {inproc_secs:>7.3} s, fleet {fleet_secs:>7.3} s, speedup {:>5.2}x",
                    row.speedup()
                );
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

struct RecoveryRow {
    workers: usize,
    recoveries: usize,
    latency_ms_mean: f64,
    resumed_from_batch: u64,
}

fn run(options: &Options) -> Result<(Vec<Row>, RecoveryRow, Vec<CrossoverRow>), String> {
    let program = worker_program(options)?;
    let scenario = scenario(options.quick).map_err(|e| format!("building the scenario: {e}"))?;
    let events: usize = scenario.batches.iter().map(Vec::len).sum();

    // ── Correctness gate: the merged stream must equal the in-process run.
    let mut reference = IndexedMonitor::new(
        scenario.system.catalog().clone(),
        scenario.system.policy().clone(),
        scenario.index.clone(),
    );
    for user in &scenario.users {
        reference.register_user(user);
    }
    let mut expected = Vec::new();
    for batch in &scenario.batches {
        expected.extend(reference.ingest_batch(batch));
    }
    let (merged, _, _) =
        run_fleet(&scenario, fleet_config(&program, "gate", 2, FaultPlan::none()))?;
    if merged != expected {
        return Err(format!(
            "correctness gate failed: 2-worker merged stream has {} alerts, in-process run has \
             {} — distributed monitoring may not change what is reported",
            merged.len(),
            expected.len()
        ));
    }

    // ── Throughput vs worker count.
    let mut rows = Vec::new();
    for &workers in &options.workers {
        let reps = if options.quick { 1 } else { 2 };
        let mut best_secs = f64::INFINITY;
        let mut last = None;
        for rep in 0..reps {
            let tag = format!("w{workers}r{rep}");
            let (alerts, stats, secs) =
                run_fleet(&scenario, fleet_config(&program, &tag, workers, FaultPlan::none()))?;
            best_secs = best_secs.min(secs);
            last = Some((alerts.len(), stats.recoveries.len()));
        }
        let (alerts, recoveries) = last.expect("at least one rep");
        let row = Row { workers, events, alerts, secs: best_secs, recoveries };
        eprintln!(
            "{:>2} workers: {:>7} events in {:>7.3} s ({:>9.0} events/s), {} alerts, {} \
             recoveries",
            row.workers,
            row.events,
            row.secs,
            row.events_per_sec(),
            row.alerts,
            row.recoveries,
        );
        rows.push(row);
    }

    // ── Recovery latency: kill a worker mid-stream, measure detection →
    // caught-up replacement.
    let kill_at = (events / 3) as u64;
    let plan = FaultPlan::none().kill_after(0, 0, kill_at.max(1));
    let (alerts, stats, _) = run_fleet(&scenario, fleet_config(&program, "recovery", 2, plan))?;
    if alerts != expected {
        return Err(
            "recovery gate failed: the killed-and-recovered run diverged from the in-process \
             stream"
                .to_owned(),
        );
    }
    if stats.recoveries.is_empty() {
        return Err("recovery gate failed: the armed kill never triggered a recovery".to_owned());
    }
    let latency_ms_mean =
        stats.recoveries.iter().map(|recovery| recovery.latency.as_secs_f64() * 1e3).sum::<f64>()
            / stats.recoveries.len() as f64;
    let recovery = RecoveryRow {
        workers: 2,
        recoveries: stats.recoveries.len(),
        latency_ms_mean,
        resumed_from_batch: stats.recoveries[0].resumed_from_batch,
    };
    eprintln!(
        "recovery: {} restart(s), mean latency {:.1} ms, resumed from batch {}",
        recovery.recoveries, recovery.latency_ms_mean, recovery.resumed_from_batch,
    );

    // ── The transport crossover matrix.
    let crossover = crossover_sweep(options, &program)?;
    Ok((rows, recovery, crossover))
}

fn json_report(
    options: &Options,
    rows: &[Row],
    recovery: &RecoveryRow,
    crossover: &[CrossoverRow],
) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads_available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"distributed_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"batch\": {BATCH},");
    let _ = writeln!(
        out,
        "  \"recovery\": {{\"workers\": {}, \"recoveries\": {}, \"latency_ms_mean\": {:.1}, \
         \"resumed_from_batch\": {}}},",
        recovery.workers,
        recovery.recoveries,
        recovery.latency_ms_mean,
        recovery.resumed_from_batch,
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"workers\": {}, \"events\": {}, \"alerts\": {}, \"secs\": {:.3}, \
             \"events_per_sec\": {:.0}",
            row.workers,
            row.events,
            row.alerts,
            row.secs,
            row.events_per_sec(),
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"crossover\": [\n");
    for (i, row) in crossover.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"weight\": {}, \"duty\": \"{}\", \"workers\": {}, \"events\": {}, \
             \"inproc_secs\": {:.3}, \"fleet_secs\": {:.3}, \"speedup\": {:.2}",
            row.weight,
            row.duty,
            row.workers,
            row.events,
            row.inproc_secs,
            row.fleet_secs,
            row.speedup(),
        );
        out.push_str(if i + 1 == crossover.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("distributed_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };
    let (rows, recovery, crossover) = match run(&options) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("distributed_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };
    // CI floors: the fleet must actually scale to the demanded width, and
    // throughput must not regress below the recorded floor.
    if let Some(widest) = rows.iter().map(|row| row.workers).max() {
        if widest < options.min_workers {
            eprintln!(
                "distributed_scaling: widest fleet ran {widest} workers, below the --min-workers \
                 {} floor",
                options.min_workers
            );
            return ExitCode::FAILURE;
        }
    }
    let best = rows.iter().map(Row::events_per_sec).fold(0.0f64, f64::max);
    if best < options.min_events_per_sec {
        eprintln!(
            "distributed_scaling: best throughput {best:.0} events/s is below the \
             --min-events-per-sec {} floor",
            options.min_events_per_sec
        );
        return ExitCode::FAILURE;
    }
    // The crossover gate: at least one swept cell where a 2+ worker fleet
    // beats the in-process monitor under the same duty cycle.
    if options.require_crossover
        && !crossover.iter().any(|row| row.workers >= 2 && row.speedup() > 1.0)
    {
        eprintln!(
            "distributed_scaling: --require-crossover failed — no swept cell with 2+ workers \
             beat the in-process run"
        );
        return ExitCode::FAILURE;
    }
    let report = json_report(&options, &rows, &recovery, &crossover);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("distributed_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("distributed_scaling: wrote {}", options.out);
    ExitCode::SUCCESS
}
