//! Regenerates every table and figure of the paper's evaluation section as
//! text, printing the same rows/series the paper reports. The output is the
//! basis of `EXPERIMENTS.md`.
//!
//! Run with `cargo run -p privacy-bench --bin experiments`.

use privacy_anonymity::{value_risk, Hierarchy, KAnonymizer, ValueRiskPolicy};
use privacy_baselines::{marketer_risk, prosecutor_risk, threat_catalogue_pass};
use privacy_core::{casestudy, Pipeline};
use privacy_dataflow::dot::system_to_dot;
use privacy_lts::dot::lts_to_dot;
use privacy_lts::{GeneratorConfig, PrivacyState};
use privacy_model::{FieldId, RiskLevel};
use privacy_risk::RiskMatrix;
use privacy_synth::{table1_raw_records, table1_release};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = casestudy::healthcare()?;
    let user = casestudy::case_a_user();

    println!("==========================================================");
    println!(" Fig. 1 — data-flow diagrams of the healthcare service");
    println!("==========================================================");
    for diagram in system.dataflows().diagrams() {
        println!("{diagram}");
    }
    println!(
        "(Graphviz available: {} characters of DOT)\n",
        system_to_dot(system.dataflows()).len()
    );

    println!("==========================================================");
    println!(" Fig. 2 — state-based model of user privacy");
    println!("==========================================================");
    let medical_lts = system.generate_lts_with(&GeneratorConfig::for_service("MedicalService"))?;
    println!(
        "state variables per state: {} (paper: 2 x 5 actors x 6 fields = 60 for its field set; \
         ours also registers the Table I attributes and pseudonymised counterparts)",
        medical_lts.space().variable_count()
    );
    println!(
        "theoretical state space: 2^{} = {:.3e}",
        medical_lts.space().variable_count(),
        medical_lts.space().theoretical_state_count()
    );
    let absolute = PrivacyState::absolute(medical_lts.space());
    println!("example state table (absolute privacy state, first 6 rows):");
    for line in absolute.table(medical_lts.space()).lines().take(7) {
        println!("  {line}");
    }
    println!();

    println!("==========================================================");
    println!(" Fig. 3 — LTS of the Medical Service process");
    println!("==========================================================");
    println!("{}", medical_lts.stats());
    for (_, transition) in medical_lts.transitions() {
        println!("  {transition}");
    }
    println!("(Graphviz available: {} characters of DOT)\n", lts_to_dot(&medical_lts).len());

    println!("==========================================================");
    println!(" Table I — risk values for 2-anonymisation data records");
    println!("==========================================================");
    let age = FieldId::new("Age");
    let height = FieldId::new("Height");
    let weight = FieldId::new("Weight");
    let raw = table1_raw_records();
    let anonymised = KAnonymizer::new(2)
        .with_hierarchy(age.clone(), Hierarchy::numeric([10.0, 20.0, 40.0]))
        .with_hierarchy(height.clone(), Hierarchy::numeric([20.0, 40.0]))
        .anonymise(&raw, &[age.clone(), height.clone()])?;
    println!(
        "2-anonymisation of the raw records chose levels {:?} (suppressed {})",
        anonymised.levels(),
        anonymised.suppressed().len()
    );
    let release = table1_release();
    let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
    let by_height = value_risk(&release, std::slice::from_ref(&height), &policy)?;
    let by_age = value_risk(&release, std::slice::from_ref(&age), &policy)?;
    let by_both = value_risk(&release, &[age.clone(), height.clone()], &policy)?;
    println!(
        "{:<10} {:<12} {:<8} | {:>11} {:>9} {:>16}",
        "Age", "Height(cm)", "Wt(kg)", "Height risk", "Age risk", "Age+Height risk"
    );
    for index in 0..release.len() {
        let record = release.get(index).expect("six records");
        println!(
            "{:<10} {:<12} {:<8} | {:>11} {:>9} {:>16}",
            record.get(&age).expect("age").to_string(),
            record.get(&height).expect("height").to_string(),
            record.get(&weight).expect("weight").to_string(),
            by_height.records()[index].as_fraction(),
            by_age.records()[index].as_fraction(),
            by_both.records()[index].as_fraction(),
        );
    }
    println!(
        "{:>33} Violations: {:>9} {:>9} {:>16}",
        "",
        by_height.violation_count(),
        by_age.violation_count(),
        by_both.violation_count()
    );
    println!("paper's violations row: 0, 2, 4\n");

    println!("==========================================================");
    println!(" Fig. 4 — pseudonymisation risk analysis output");
    println!("==========================================================");
    let outcome_b = Pipeline::new(&system).analyse_user_and_release(
        &user,
        &casestudy::case_b_adversary(),
        &release,
        ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        &casestudy::table1_visible_sets(),
        Some(0.5),
    )?;
    let pseudonym = outcome_b.report.pseudonym().expect("pseudonym analysis ran");
    println!("{pseudonym}");
    println!(
        "annotated LTS: {} (risk transitions are the dotted edges of Fig. 4)\n",
        outcome_b.lts.stats()
    );

    println!("==========================================================");
    println!(" Case Study A — identifying unwanted disclosure");
    println!("==========================================================");
    println!("risk matrix in use:\n{}", RiskMatrix::standard());
    let outcome_a = Pipeline::new(&system).analyse_user(&user)?;
    let disclosure = outcome_a.report.disclosure().expect("disclosure analysis ran");
    println!("{disclosure}");
    let before =
        disclosure.risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis());
    let revised = system.with_policy(system.policy().with_applied(
        &privacy_access::PolicyDelta::new().revoke(
            "Administrator",
            privacy_access::Permission::Read,
            "EHR",
        ),
    ));
    let outcome_revised = Pipeline::new(&revised).analyse_user(&user)?;
    let after = outcome_revised
        .report
        .disclosure()
        .expect("disclosure analysis ran")
        .risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis());
    println!("Administrator/Diagnosis risk before policy change: {before} (paper: Medium)");
    println!("Administrator/Diagnosis risk after  policy change: {after} (paper: Low)");
    assert_eq!(before, RiskLevel::Medium);
    assert_eq!(after, RiskLevel::Low);
    println!();

    println!("==========================================================");
    println!(" Baseline comparison (related-work analysers, same inputs)");
    println!("==========================================================");
    println!(
        "LINDDUN-style catalogue pass: {} candidate threats (unquantified)",
        threat_catalogue_pass(system.catalog(), system.dataflows()).len()
    );
    println!("{}", prosecutor_risk(&release, &[age.clone(), height.clone()]));
    println!("{}", marketer_risk(&release, &[age, height]));
    println!("value-risk violations (this paper's measure): {:?}", pseudonym.violation_series());

    println!("\nall figures and tables regenerated successfully");
    Ok(())
}
