//! The crash-recovery benchmark: snapshot/restore cost for the indexed
//! monitor and the checkpointed-audit speedup over the append-only log,
//! recorded as `BENCH_recovery.json`.
//!
//! PR 4 made the operation-time monitor probe the shared design-time index;
//! this benchmark tracks the *restartability* of that layer. Per scenario it
//! runs `Pipeline::analyse_population` once (the design-time build whose
//! shared index serves both fresh and resumed monitors), replays a
//! `privacy-synth` workload into an event stream, then measures:
//!
//! * **Snapshot / restore** — at the mid-stream cut point: encoding the
//!   monitor's state through the `privacy-interchange` binary codec
//!   (`snapshot().to_bytes()`), and the restart path
//!   (`MonitorSnapshot::from_bytes` + `IndexedMonitor::resume_from`) against
//!   re-ingesting the whole prefix from the log — the `restore_speedup`
//!   column is "resume instead of replay".
//! * **Checkpointed audit** — the log grows in `audits` increments; each
//!   period either re-audits from scratch (`check_log`: index rebuild +
//!   probes over the whole prefix) or appends the increment to one
//!   maintained `EventLogIndex` and runs `check_log_checkpointed` with the
//!   carried `AuditCheckpoint`, paying only for the suffix. The
//!   `suffix_speedup` column is the total-cost ratio across all periods and
//!   is what `--min-suffix-speedup` gates in CI.
//!
//! Before anything is timed, the benchmark proves the recovery is lossless:
//! drained-prefix + post-resume alerts must equal the uninterrupted run's
//! alert stream (with per-user states bit-identical, across snapshot and
//! resume thread counts), and the final checkpointed report must equal the
//! from-scratch `check_log_scan` over the full log.
//!
//! A third concern rides along since the sparse snapshot encoding (v3):
//! the **population scenario** measures snapshot footprint at realistic
//! population scale — a skewed `privacy-synth` population (cold majority,
//! small engaged minority) over the healthcare model, reported as snapshot
//! bytes per user, encode/resume throughput in users per second,
//! steady-state RSS and the per-row encoding-choice histogram. The full
//! run measures 1,000,000 users (`population_1m`); `--quick --population`
//! scales down to 65,536 (`population_64k`). `--max-bytes-per-user` turns
//! the footprint into a CI gate.
//!
//! ```text
//! monitor_recovery [--quick] [--min-suffix-speedup X] [--out PATH]
//!                  [--threads N] [--force-baseline]
//!                  [--population] [--population-only] [--max-bytes-per-user X]
//! ```
//!
//! See `docs/PERFORMANCE.md` for the recorded baseline.

use privacy_bench::{time_runs, write_report};
use privacy_compliance::{
    check_log, check_log_checkpointed, check_log_scan, ActorMatcher, AuditCheckpoint, FieldMatcher,
    PrivacyPolicy, Statement,
};
use privacy_core::{casestudy, Pipeline, PrivacySystem};
use privacy_lts::ActionKind;
use privacy_model::{ActorId, Catalog, FieldId, ModelError, Record, ServiceId, UserProfile};
use privacy_runtime::snapshot::SnapshotEncodingHistogram;
use privacy_runtime::{
    Event, EventLog, EventLogIndex, IndexedMonitor, MonitorSnapshot, ServiceEngine,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// One benchmark scenario.
struct Scenario {
    name: String,
    users: usize,
    requests: usize,
    system: PrivacySystem,
}

/// One measured row of the report.
struct Row {
    scenario: Scenario,
    events: usize,
    cut: usize,
    alerts: usize,
    snapshot_bytes: usize,
    snapshot_encode_secs: f64,
    resume_secs: f64,
    prefix_replay_secs: f64,
    audits: usize,
    audit_statements: usize,
    audit_scratch_secs: f64,
    audit_checkpoint_secs: f64,
}

/// Streams below this length time per-audit setup, not suffix cost; the
/// regression guard skips them.
const GUARD_MIN_EVENTS: usize = 1_000;

/// How many audit periods the log is split into.
const AUDIT_PERIODS: usize = 16;

impl Row {
    /// "Resume instead of replaying the prefix" speedup.
    fn restore_speedup(&self) -> f64 {
        self.prefix_replay_secs / self.resume_secs
    }

    /// Total checkpointed-audit speedup over from-scratch periodic audits.
    fn suffix_speedup(&self) -> f64 {
        self.audit_scratch_secs / self.audit_checkpoint_secs
    }

    fn guarded(&self) -> bool {
        self.events >= GUARD_MIN_EVENTS
    }
}

struct Options {
    quick: bool,
    min_suffix_speedup: f64,
    out: String,
    threads: Option<usize>,
    force_baseline: bool,
    population: bool,
    population_only: bool,
    max_bytes_per_user: f64,
}

impl Options {
    /// Whether this invocation measures the population scenario: always in
    /// the full run, opt-in (`--population` / `--population-only`) under
    /// `--quick` so the existing quick CI leg's timing is untouched.
    fn wants_population(&self) -> bool {
        self.population_only || self.population || !self.quick
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        min_suffix_speedup: 0.0,
        out: "BENCH_recovery.json".to_owned(),
        threads: None,
        force_baseline: false,
        population: false,
        population_only: false,
        max_bytes_per_user: 0.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-suffix-speedup" => {
                let value = args.next().ok_or("--min-suffix-speedup needs a value")?;
                options.min_suffix_speedup = value
                    .parse()
                    .map_err(|_| format!("bad --min-suffix-speedup value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            "--force-baseline" => options.force_baseline = true,
            "--population" => options.population = true,
            "--population-only" => options.population_only = true,
            "--max-bytes-per-user" => {
                let value = args.next().ok_or("--max-bytes-per-user needs a value")?;
                options.max_bytes_per_user = value
                    .parse()
                    .map_err(|_| format!("bad --max-bytes-per-user value `{value}`"))?;
            }
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios: the paper's healthcare model plus a wider
/// synthetic model (the same pair the runtime scaling bench uses, so the
/// recovery numbers are comparable with the ingestion numbers).
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    use privacy_synth::{random_model, ModelGeneratorConfig};
    let mut scenarios = Vec::new();
    scenarios.push(Scenario {
        name: "healthcare".to_owned(),
        users: if quick { 128 } else { 256 },
        requests: if quick { 1_500 } else { 6_000 },
        system: casestudy::healthcare()?,
    });

    let config = ModelGeneratorConfig {
        actors: 8,
        fields: 10,
        datastores: 3,
        services: 3,
        flows_per_service: 6,
        grant_probability: 0.5,
        seed: 11,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config)?;
    scenarios.push(Scenario {
        name: "synth_8a_10f_3s".to_owned(),
        users: if quick { 64 } else { 128 },
        requests: if quick { 1_000 } else { 4_000 },
        system: PrivacySystem::new(catalog, dataflows, policy),
    });
    Ok(scenarios)
}

/// A seeded user population over the catalog's services and fields.
fn population(catalog: &Catalog, count: usize) -> Vec<UserProfile> {
    use privacy_synth::{random_profiles, ProfileGeneratorConfig};
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    random_profiles(&ProfileGeneratorConfig {
        count,
        seed: 13,
        services,
        consent_probability: 0.5,
        fields,
        sensitivity_probability: 0.6,
    })
}

/// Replays a seeded workload through the service engine and returns the
/// resulting event stream.
fn event_stream(scenario: &Scenario, users: &[UserProfile]) -> Vec<Event> {
    use privacy_synth::{random_workload, WorkloadConfig};
    let catalog = scenario.system.catalog();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<(ServiceId, f64)> =
        catalog.services().map(|s| (s.id().clone(), 1.0)).collect();
    let mut engine = ServiceEngine::new(
        catalog.clone(),
        scenario.system.dataflows().clone(),
        scenario.system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: scenario.requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services,
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    engine.log().events().to_vec()
}

/// The multi-statement runtime hygiene policy the audits check (the
/// `runtime_scaling` policy shape).
fn audit_policy(catalog: &Catalog) -> PrivacyPolicy {
    let actors: Vec<ActorId> = catalog.identifying_actors().map(|a| a.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let mut policy = PrivacyPolicy::new("monitor-recovery hygiene policy");
    for (i, actor) in actors.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("NO-DELETE-{i}"),
            format!("{actor} never deletes records"),
            ActorMatcher::only([actor.clone()]),
            Some(ActionKind::Delete),
            FieldMatcher::Any,
        ));
    }
    for (i, field) in fields.iter().enumerate() {
        policy.add_statement(Statement::require_erasure(
            format!("ERASE-{i}"),
            format!("{field} must be erasable on request"),
            FieldMatcher::only([field.clone()]),
        ));
        policy.add_statement(Statement::max_exposure(
            format!("EXPOSE-{i}"),
            format!("at most two actors may observe {field}"),
            field.clone(),
            2,
        ));
        policy.add_statement(Statement::service_limit(
            format!("SERVICE-{i}"),
            format!("{field} stays in the declared services"),
            FieldMatcher::only([field.clone()]),
            services.iter().cloned(),
        ));
    }
    policy
}

/// The audit period boundaries: `AUDIT_PERIODS` roughly equal increments
/// ending exactly at the stream length.
fn audit_bounds(events: usize) -> Vec<usize> {
    let step = events.div_ceil(AUDIT_PERIODS).max(1);
    let mut bounds: Vec<usize> = (1..=AUDIT_PERIODS).map(|i| (i * step).min(events)).collect();
    bounds.dedup();
    bounds
}

fn run(options: &Options) -> Result<Vec<Row>, String> {
    let target =
        if options.quick { Duration::from_millis(200) } else { Duration::from_millis(700) };
    let snapshot_threads = options.threads.unwrap_or(4).max(1);
    let mut rows = Vec::new();

    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let catalog = scenario.system.catalog().clone();
        let policy = scenario.system.policy().clone();
        let users = population(&catalog, scenario.users);

        // One design-time build serves the population analysis, every fresh
        // monitor and every resumed monitor.
        let outcome = Pipeline::new(&scenario.system)
            .analyse_population(&users, options.threads)
            .map_err(|e| format!("{}: population analysis failed: {e}", scenario.name))?;
        let index = outcome.shared_index();

        let events = event_stream(&scenario, &users);
        let cut = events.len() / 2;
        let audit = audit_policy(&catalog);

        let mut proto = IndexedMonitor::new(catalog.clone(), policy.clone(), index.clone());
        for user in &users {
            proto.register_user(user);
        }

        // ── Correctness gates (nothing is timed until recovery is lossless).
        let mut uninterrupted = proto.clone();
        let full_alerts = uninterrupted.ingest_batch(&events);

        let mut at_cut = proto.clone().with_threads(Some(snapshot_threads));
        let prefix_alerts = at_cut.ingest_batch(&events[..cut]);
        let drained = at_cut.drain_alerts();
        if drained != prefix_alerts {
            return Err(format!("{}: drained prefix alerts diverge", scenario.name));
        }
        let snapshot_bytes_vec = at_cut.snapshot().to_bytes();
        for resume_threads in [1usize, 2] {
            let snapshot = MonitorSnapshot::from_bytes(&snapshot_bytes_vec)
                .map_err(|e| format!("{}: snapshot round-trip failed: {e}", scenario.name))?;
            let mut resumed = IndexedMonitor::resume_from(
                catalog.clone(),
                policy.clone(),
                index.clone(),
                &snapshot,
            )
            .map_err(|e| format!("{}: resume failed: {e}", scenario.name))?
            .with_threads(Some(resume_threads));
            let tail_alerts = resumed.ingest_batch(&events[cut..]);
            let mut recovered = prefix_alerts.clone();
            recovered.extend(tail_alerts);
            if recovered != full_alerts {
                return Err(format!(
                    "{}: snapshot(t={snapshot_threads}) → resume(t={resume_threads}) alert \
                     stream diverges from the uninterrupted run",
                    scenario.name
                ));
            }
            for user in &users {
                if resumed.state_of(user.id()) != uninterrupted.state_of(user.id()) {
                    return Err(format!(
                        "{}: post-recovery state of `{}` diverges",
                        scenario.name,
                        user.id()
                    ));
                }
            }
        }

        // Checkpointed audits must equal the from-scratch scan at every
        // period boundary.
        let bounds = audit_bounds(events.len());
        let prefix_logs: Vec<EventLog> = bounds
            .iter()
            .map(|&bound| {
                let mut log = EventLog::new();
                log.extend(events[..bound].iter().cloned());
                log
            })
            .collect();
        {
            let mut maintained = EventLogIndex::build(&EventLog::new());
            let mut checkpoint: Option<AuditCheckpoint> = None;
            let mut covered = 0usize;
            for (log, &bound) in prefix_logs.iter().zip(&bounds) {
                maintained.append(&events[covered..bound]);
                covered = bound;
                let (report, next) =
                    check_log_checkpointed(log, &maintained, &audit, checkpoint.take()).map_err(
                        |e| format!("{}: checkpointed audit failed: {e}", scenario.name),
                    )?;
                if report != check_log_scan(log, &audit) {
                    return Err(format!(
                        "{}: checkpointed audit at {bound} events diverges from the scan",
                        scenario.name
                    ));
                }
                checkpoint = Some(next);
            }
        }

        // ── Timings.
        let (snapshot_encode_secs, snapshot_bytes) =
            time_runs(target, || at_cut.snapshot().to_bytes().len());
        let (resume_secs, _) = time_runs(target, || {
            let snapshot =
                MonitorSnapshot::from_bytes(&snapshot_bytes_vec).expect("validated above");
            IndexedMonitor::resume_from(catalog.clone(), policy.clone(), index.clone(), &snapshot)
                .expect("validated above")
                .user_count()
        });
        let (prefix_replay_secs, _) = time_runs(target, || {
            let mut monitor = proto.clone();
            monitor.ingest_batch(&events[..cut]).len()
        });

        let (audit_scratch_secs, _) = time_runs(target, || {
            let mut violations = 0usize;
            for log in &prefix_logs {
                violations += check_log(log, &audit).violation_count();
            }
            violations
        });
        let (audit_checkpoint_secs, _) = time_runs(target, || {
            let mut maintained = EventLogIndex::build(&EventLog::new());
            let mut checkpoint: Option<AuditCheckpoint> = None;
            let mut covered = 0usize;
            let mut violations = 0usize;
            for (log, &bound) in prefix_logs.iter().zip(&bounds) {
                maintained.append(&events[covered..bound]);
                covered = bound;
                let (report, next) =
                    check_log_checkpointed(log, &maintained, &audit, checkpoint.take())
                        .expect("validated above");
                violations += report.violation_count();
                checkpoint = Some(next);
            }
            violations
        });

        let row = Row {
            events: events.len(),
            cut,
            alerts: full_alerts.len(),
            snapshot_bytes,
            snapshot_encode_secs,
            resume_secs,
            prefix_replay_secs,
            audits: bounds.len(),
            audit_statements: audit.len(),
            audit_scratch_secs,
            audit_checkpoint_secs,
            scenario,
        };
        eprintln!(
            "{:<20} {:>6} events cut@{:<6} | snapshot {:>7} B, encode {:>7.3} ms, resume \
             {:>7.3} ms (replay {:>8.3} ms, {:>6.1}x) | {} audits {:>8.3} ms scratch vs \
             {:>8.3} ms checkpointed ({:>5.2}x)",
            row.scenario.name,
            row.events,
            row.cut,
            row.snapshot_bytes,
            row.snapshot_encode_secs * 1e3,
            row.resume_secs * 1e3,
            row.prefix_replay_secs * 1e3,
            row.restore_speedup(),
            row.audits,
            row.audit_scratch_secs * 1e3,
            row.audit_checkpoint_secs * 1e3,
            row.suffix_speedup(),
        );
        rows.push(row);
    }
    Ok(rows)
}

/// One measured population-scale footprint row.
struct PopulationRow {
    name: String,
    users: usize,
    engaged: usize,
    events: usize,
    alerts: usize,
    snapshot_bytes: usize,
    encode_secs: f64,
    resume_secs: f64,
    rss_mb: f64,
    histogram: SnapshotEncodingHistogram,
}

impl PopulationRow {
    fn bytes_per_user(&self) -> f64 {
        self.snapshot_bytes as f64 / self.users.max(1) as f64
    }

    fn encode_users_per_sec(&self) -> f64 {
        self.users as f64 / self.encode_secs
    }

    fn resume_users_per_sec(&self) -> f64 {
        self.users as f64 / self.resume_secs
    }
}

/// Resident set size in MiB, from `/proc/self/status` (0.0 where absent).
fn rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmRSS:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// The population-scale footprint scenario: a skewed million-user (64k
/// under `--quick`) population over the healthcare model, where most users
/// are cold and a small minority is engaged. The design-time index is
/// built directly (`generate_lts` + `LtsIndex::build`) — no per-user
/// population analysis — because what is measured here is the *monitor's*
/// snapshot footprint and restart cost, not design-time analysis.
///
/// The same lossless-recovery gate as the main scenarios runs first at the
/// mid-stream cut: prefix + post-resume alerts must equal the
/// uninterrupted run, with per-user states equal on a deterministic sample
/// of the population plus every engaged user.
fn run_population(options: &Options) -> Result<PopulationRow, String> {
    use privacy_lts::LtsIndex;
    use privacy_synth::{
        random_workload, skewed_population, SkewedPopulationConfig, WorkloadConfig,
    };

    let (name, count, requests) = if options.quick {
        ("population_64k", 65_536, 2_000)
    } else {
        ("population_1m", 1_000_000, 20_000)
    };
    let target = if options.quick { Duration::from_millis(200) } else { Duration::from_secs(2) };

    let system = casestudy::healthcare().map_err(|e| format!("{name}: healthcare model: {e}"))?;
    let catalog = system.catalog().clone();
    let policy = system.policy().clone();
    let lts = system.generate_lts().map_err(|e| format!("{name}: LTS generation: {e}"))?;
    let index = Arc::new(LtsIndex::build(&lts));

    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let population = skewed_population(&SkewedPopulationConfig {
        count,
        seed: 41,
        services: services.clone(),
        fields: fields.clone(),
        ..SkewedPopulationConfig::default()
    });
    eprintln!("{name}: {count} users ({} engaged), registering…", population.engaged.len());

    let mut proto = IndexedMonitor::new(catalog.clone(), policy.clone(), index.clone());
    for user in &population.profiles {
        proto.register_user(user);
    }

    // The event stream exercises the engaged minority only — cold users
    // exist to be *carried* (registered, snapshotted, resumed), which is
    // exactly the skew the sparse encoding exploits.
    let workload = random_workload(&WorkloadConfig {
        length: requests,
        seed: 43,
        users: population.engaged.clone(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    let mut engine =
        ServiceEngine::new(catalog.clone(), system.dataflows().clone(), policy.clone());
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let events = engine.log().events().to_vec();
    let cut = events.len() / 2;

    // ── Lossless-recovery gate at the cut point.
    let mut at_cut = proto.clone();
    let prefix_alerts = at_cut.ingest_batch(&events[..cut]);
    let _ = at_cut.drain_alerts();
    let snapshot = at_cut.snapshot();
    let snapshot_bytes_vec = snapshot.to_bytes();
    let histogram = snapshot.encoding_histogram();
    drop(snapshot);

    let mut uninterrupted = proto;
    let full_alerts = uninterrupted.ingest_batch(&events);

    let decoded = MonitorSnapshot::from_bytes(&snapshot_bytes_vec)
        .map_err(|e| format!("{name}: snapshot round-trip failed: {e}"))?;
    let mut resumed =
        IndexedMonitor::resume_from(catalog.clone(), policy.clone(), index.clone(), &decoded)
            .map_err(|e| format!("{name}: resume failed: {e}"))?;
    let tail_alerts = resumed.ingest_batch(&events[cut..]);
    let mut recovered = prefix_alerts;
    recovered.extend(tail_alerts);
    if recovered != full_alerts {
        return Err(format!("{name}: recovered alert stream diverges from the uninterrupted run"));
    }
    for user in
        population.profiles.iter().step_by(499).map(|u| u.id()).chain(population.engaged.iter())
    {
        if resumed.state_of(user) != uninterrupted.state_of(user) {
            return Err(format!("{name}: post-recovery state of `{user}` diverges"));
        }
    }

    // ── Timings: encode the cut-point snapshot, resume from its bytes.
    let (encode_secs, snapshot_bytes) = time_runs(target, || at_cut.snapshot().to_bytes().len());
    let (resume_secs, _) = time_runs(target, || {
        let snapshot = MonitorSnapshot::from_bytes(&snapshot_bytes_vec).expect("validated above");
        IndexedMonitor::resume_from(catalog.clone(), policy.clone(), index.clone(), &snapshot)
            .expect("validated above")
            .user_count()
    });

    let row = PopulationRow {
        name: name.to_owned(),
        users: count,
        engaged: population.engaged.len(),
        events: events.len(),
        alerts: full_alerts.len(),
        snapshot_bytes,
        encode_secs,
        resume_secs,
        rss_mb: rss_mb(),
        histogram,
    };
    eprintln!(
        "{:<20} {:>7} users ({} engaged) | snapshot {:>9} B = {:>6.2} B/user | encode \
         {:>9.0} users/s, resume {:>9.0} users/s | rss {:>7.1} MB | rows: {} dense / {} \
         indexed / {} runs words, {} dense / {} based sens",
        row.name,
        row.users,
        row.engaged,
        row.snapshot_bytes,
        row.bytes_per_user(),
        row.encode_users_per_sec(),
        row.resume_users_per_sec(),
        row.rss_mb,
        row.histogram.words_dense,
        row.histogram.words_indexed,
        row.histogram.words_runs,
        row.histogram.sensitivities_dense,
        row.histogram.sensitivities_based,
    );
    Ok(row)
}

fn json_report(options: &Options, rows: &[Row], population_rows: &[PopulationRow]) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads_available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let min_suffix = rows
        .iter()
        .filter(|row| row.guarded())
        .map(Row::suffix_speedup)
        .fold(f64::INFINITY, f64::min);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"monitor_recovery\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"guard_min_events\": {GUARD_MIN_EVENTS},");
    let _ = writeln!(out, "  \"audit_periods\": {AUDIT_PERIODS},");
    let _ = writeln!(
        out,
        "  \"min_suffix_speedup_observed\": {:.3},",
        if min_suffix.is_finite() { min_suffix } else { 0.0 }
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"users\": {}, \"events\": {}, \"cut\": {}, \"alerts\": {}, \
             \"snapshot_bytes\": {}, \"snapshot_encode_ms\": {:.3}, \"resume_ms\": {:.3}, \
             \"prefix_replay_ms\": {:.3}, \"restore_speedup\": {:.3}, \"audits\": {}, \
             \"audit_statements\": {}, \"audit_scratch_ms\": {:.3}, \
             \"audit_checkpoint_ms\": {:.3}, \"suffix_speedup\": {:.3}, \"guarded\": {}",
            row.scenario.name,
            row.scenario.users,
            row.events,
            row.cut,
            row.alerts,
            row.snapshot_bytes,
            row.snapshot_encode_secs * 1e3,
            row.resume_secs * 1e3,
            row.prefix_replay_secs * 1e3,
            row.restore_speedup(),
            row.audits,
            row.audit_statements,
            row.audit_scratch_secs * 1e3,
            row.audit_checkpoint_secs * 1e3,
            row.suffix_speedup(),
            row.guarded()
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"population_rows\": [\n");
    for (i, row) in population_rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"users\": {}, \"engaged\": {}, \"events\": {}, \"alerts\": {}, \
             \"snapshot_bytes\": {}, \"bytes_per_user\": {:.3}, \"encode_users_per_sec\": {:.0}, \
             \"resume_users_per_sec\": {:.0}, \"rss_mb\": {:.1}, \"words_dense\": {}, \
             \"words_indexed\": {}, \"words_runs\": {}, \"sensitivities_dense\": {}, \
             \"sensitivities_based\": {}",
            row.name,
            row.users,
            row.engaged,
            row.events,
            row.alerts,
            row.snapshot_bytes,
            row.bytes_per_user(),
            row.encode_users_per_sec(),
            row.resume_users_per_sec(),
            row.rss_mb,
            row.histogram.words_dense,
            row.histogram.words_indexed,
            row.histogram.words_runs,
            row.histogram.sensitivities_dense,
            row.histogram.sensitivities_based,
        );
        out.push_str(if i + 1 == population_rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("monitor_recovery: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rows = if options.population_only {
        Vec::new()
    } else {
        match run(&options) {
            Ok(rows) => rows,
            Err(message) => {
                eprintln!("monitor_recovery: {message}");
                return ExitCode::FAILURE;
            }
        }
    };

    let population_rows = if options.wants_population() {
        match run_population(&options) {
            Ok(row) => vec![row],
            Err(message) => {
                eprintln!("monitor_recovery: {message}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let report = json_report(&options, &rows, &population_rows);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("monitor_recovery: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("monitor_recovery: wrote {}", options.out);

    if options.max_bytes_per_user > 0.0 {
        if population_rows.is_empty() {
            eprintln!(
                "monitor_recovery: regression guard failed: --max-bytes-per-user given but no \
                 population row was measured (pass --population or drop --quick)"
            );
            return ExitCode::FAILURE;
        }
        for row in &population_rows {
            if row.bytes_per_user() > options.max_bytes_per_user {
                eprintln!(
                    "monitor_recovery: regression guard failed: `{}` snapshot footprint \
                     {:.2} bytes/user exceeds the allowed {:.2}",
                    row.name,
                    row.bytes_per_user(),
                    options.max_bytes_per_user
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if options.min_suffix_speedup > 0.0 {
        let guarded: Vec<&Row> = rows.iter().filter(|row| row.guarded()).collect();
        if guarded.is_empty() {
            eprintln!(
                "monitor_recovery: regression guard failed: no stream reaches \
                 {GUARD_MIN_EVENTS} events, so the suffix-speedup floor cannot be enforced"
            );
            return ExitCode::FAILURE;
        }
        for row in &guarded {
            if row.suffix_speedup() < options.min_suffix_speedup {
                eprintln!(
                    "monitor_recovery: regression guard failed: `{}` checkpointed-audit speedup \
                     {:.2}x is below the required {:.2}x",
                    row.scenario.name,
                    row.suffix_speedup(),
                    options.min_suffix_speedup
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
