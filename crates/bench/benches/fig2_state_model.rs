//! Fig. 2 — the state-based model of user privacy.
//!
//! Measures the cost of the state representation itself: building variable
//! spaces, flipping state variables and rendering the Fig. 2 table, at the
//! paper's 60-variable scale and beyond.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privacy_lts::{PrivacyState, VarSpace};
use privacy_model::{ActorId, FieldId};
use std::hint::black_box;

fn space(actors: usize, fields: usize) -> VarSpace {
    VarSpace::new(
        (0..actors).map(|i| ActorId::new(format!("a{i}"))),
        (0..fields).map(|i| FieldId::new(format!("f{i}"))),
    )
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_state_model");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // The paper's scale: 5 actors x 6 fields = 60 Boolean variables.
    for (actors, fields) in [(5usize, 6usize), (10, 20), (20, 50)] {
        let variables = 2 * actors * fields;
        let space = space(actors, fields);
        group.bench_with_input(
            BenchmarkId::new("set_all_variables", variables),
            &space,
            |b, space| {
                b.iter(|| {
                    let mut state = PrivacyState::absolute(space);
                    for (actor, field) in
                        space.pairs().map(|(a, f)| (a.clone(), f.clone())).collect::<Vec<_>>()
                    {
                        state.set_has(space, &actor, &field, true);
                        state.set_could(space, &actor, &field, true);
                    }
                    black_box(state.count_true())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("render_fig2_table", variables),
            &space,
            |b, space| {
                let state = PrivacyState::absolute(space);
                b.iter(|| black_box(state.table(space)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
