//! Fig. 3 — automatic generation of the LTS for the Medical Service process
//! (and for the whole two-service system).
//!
//! The headline claim of Section II-B is that the data-flow model keeps the
//! generated LTS tiny compared with the `2^60` theoretical state space; the
//! benchmark measures generation time for the medical service alone, the full
//! interleaved system and the potential-read variant.

use criterion::{criterion_group, criterion_main, Criterion};
use privacy_core::casestudy;
use privacy_lts::GeneratorConfig;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let system = casestudy::healthcare().expect("fixture builds");
    let mut group = c.benchmark_group("fig3_lts_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("medical_service_only", |b| {
        let config = GeneratorConfig::for_service("MedicalService");
        b.iter(|| black_box(system.generate_lts_with(&config).expect("generates")))
    });

    group.bench_function("both_services_interleaved", |b| {
        let config = GeneratorConfig::default();
        b.iter(|| black_box(system.generate_lts_with(&config).expect("generates")))
    });

    group.bench_function("both_services_sequential", |b| {
        let config = GeneratorConfig { interleave_services: false, ..GeneratorConfig::default() };
        b.iter(|| black_box(system.generate_lts_with(&config).expect("generates")))
    });

    group.bench_function("with_potential_reads", |b| {
        let config = GeneratorConfig::default().with_potential_reads();
        b.iter(|| black_box(system.generate_lts_with(&config).expect("generates")))
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
