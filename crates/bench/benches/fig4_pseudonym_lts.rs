//! Fig. 4 — annotating the LTS with pseudonymisation risk-transitions.
//!
//! Measures the full Case Study B pipeline: generate the LTS, run the
//! unwanted-disclosure analysis and inject the researcher's risk-transitions
//! with their violation scores.

use criterion::{criterion_group, criterion_main, Criterion};
use privacy_anonymity::ValueRiskPolicy;
use privacy_core::{casestudy, Pipeline};
use privacy_synth::table1_release;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let system = casestudy::healthcare().expect("fixture builds");
    let user = casestudy::case_a_user();
    let release = table1_release();
    let visible_sets = casestudy::table1_visible_sets();
    let mut group = c.benchmark_group("fig4_pseudonym_lts");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("full_case_study_b_pipeline", |b| {
        b.iter(|| {
            let outcome = Pipeline::new(&system)
                .analyse_user_and_release(
                    &user,
                    &casestudy::case_b_adversary(),
                    &release,
                    ValueRiskPolicy::weight_within_5kg_at_90_percent(),
                    &visible_sets,
                    Some(0.5),
                )
                .expect("pipeline runs");
            black_box(outcome.lts.stats().risk_transitions)
        })
    });

    group.bench_function("violation_series_only", |b| {
        b.iter(|| {
            let outcome = Pipeline::new(&system)
                .analyse_user_and_release(
                    &user,
                    &casestudy::case_b_adversary(),
                    &release,
                    ValueRiskPolicy::weight_within_5kg_at_90_percent(),
                    &visible_sets,
                    None,
                )
                .expect("pipeline runs");
            black_box(outcome.report.pseudonym().expect("ran").violation_series())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
