//! Extension benchmarks (not tied to a paper table/figure): the `.psm`
//! interchange front end, privacy-policy compliance checking and the
//! additional anonymisation risk metrics (re-identification risk and
//! t-closeness), measured on the healthcare case study and on synthetic
//! populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privacy_anonymity::t_closeness_of;
use privacy_compliance::{baseline_policy, check_lts, PrivacyPolicy};
use privacy_core::casestudy;
use privacy_interchange::{parse_document, render_system};
use privacy_model::{FieldId, Purpose};
use privacy_risk::{reident_risk, ReidentPolicy};
use privacy_synth::{random_health_records, RecordGeneratorConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_interchange(c: &mut Criterion) {
    let system = casestudy::healthcare().expect("fixture builds");
    let source = render_system("Healthcare", &system);

    let mut group = c.benchmark_group("extensions_interchange");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("render_healthcare_psm", |b| {
        b.iter(|| black_box(render_system("Healthcare", &system)))
    });
    group.bench_function("parse_healthcare_psm", |b| {
        b.iter(|| black_box(parse_document(&source).expect("parses")))
    });
    group.finish();
}

fn bench_compliance(c: &mut Criterion) {
    let system = casestudy::healthcare().expect("fixture builds");
    let lts = system.generate_lts().expect("generates");
    let mut policy: PrivacyPolicy = baseline_policy(
        system.catalog(),
        [Purpose::new("record diagnosis and treatment").unwrap()],
        4,
    );
    policy.extend(baseline_policy(system.catalog(), [], 3).iter().map(|s| {
        privacy_compliance::Statement::new(
            format!("dup-{}", s.id()),
            s.description(),
            s.kind().clone(),
        )
    }));

    let mut group = c.benchmark_group("extensions_compliance");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("check_lts_baseline_policy", |b| {
        b.iter(|| black_box(check_lts(&lts, &policy)))
    });
    group.finish();
}

fn bench_reident_and_tcloseness(c: &mut Criterion) {
    let age = FieldId::new("Age");
    let height = FieldId::new("Height");
    let weight = FieldId::new("Weight");

    let mut group = c.benchmark_group("extensions_anonymity_metrics");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    for records in [100usize, 1000] {
        let data = random_health_records(&RecordGeneratorConfig::with_count(records).with_seed(7));
        let visible_sets = vec![vec![], vec![height.clone()], vec![age.clone(), height.clone()]];
        group.bench_with_input(BenchmarkId::new("reident_risk", records), &data, |b, data| {
            b.iter(|| black_box(reident_risk(data, &visible_sets, &ReidentPolicy::majority())))
        });
        group.bench_with_input(BenchmarkId::new("t_closeness", records), &data, |b, data| {
            b.iter(|| black_box(t_closeness_of(data, &[age.clone(), height.clone()], &weight)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interchange, bench_compliance, bench_reident_and_tcloseness);
criterion_main!(benches);
