//! Case Study A — the unwanted-disclosure analysis before and after the
//! access-policy change, plus its scaling with the number of analysed users.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privacy_access::{Permission, PolicyDelta};
use privacy_core::{casestudy, Pipeline};
use privacy_synth::{random_profiles, ProfileGeneratorConfig};
use std::hint::black_box;

fn bench_case_a(c: &mut Criterion) {
    let system = casestudy::healthcare().expect("fixture builds");
    let revised = system.with_policy(system.policy().with_applied(&PolicyDelta::new().revoke(
        "Administrator",
        Permission::Read,
        "EHR",
    )));
    let user = casestudy::case_a_user();
    let mut group = c.benchmark_group("case_a_disclosure");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("analyse_original_policy", |b| {
        let pipeline = Pipeline::new(&system);
        b.iter(|| black_box(pipeline.analyse_user(&user).expect("analyses")))
    });

    group.bench_function("analyse_revised_policy", |b| {
        let pipeline = Pipeline::new(&revised);
        b.iter(|| black_box(pipeline.analyse_user(&user).expect("analyses")))
    });

    // Per-user instances: the paper notes the analysis runs per user, so the
    // cost grows linearly with the user population.
    for count in [10usize, 50, 200] {
        let users = random_profiles(&ProfileGeneratorConfig {
            count,
            services: vec![casestudy::medical_service(), casestudy::research_service()],
            fields: vec![casestudy::fields::diagnosis(), casestudy::fields::treatment()],
            ..ProfileGeneratorConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("analyse_population", count),
            &users,
            |b, users| {
                let pipeline = Pipeline::new(&system);
                b.iter(|| {
                    let mut worst = privacy_model::RiskLevel::Low;
                    for user in users {
                        let outcome = pipeline.analyse_user(user).expect("analyses");
                        worst = worst.max(outcome.report.overall_level());
                    }
                    black_box(worst)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_case_a);
criterion_main!(benches);
