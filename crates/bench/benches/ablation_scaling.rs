//! Ablation / scaling benches (not in the paper, but probing its core claim):
//! how LTS generation scales with the number of actors and fields, how the
//! potential-read exploration changes the cost, and how the runtime
//! simulator's throughput scales with workload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privacy_bench::scaled_system;
use privacy_core::casestudy;
use privacy_lts::GeneratorConfig;
use privacy_model::{Record, SensitivityCategory, UserId, UserProfile};
use privacy_runtime::{run_concurrent_workload, ConcurrentConfig, RuntimeMonitor, ServiceEngine};
use privacy_synth::{random_workload, WorkloadConfig};
use std::hint::black_box;

fn bench_lts_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lts_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (actors, fields) in [(2usize, 4usize), (4, 8), (6, 12), (8, 16)] {
        let system = scaled_system(actors, fields).expect("scaled system builds");
        let variables = 2 * actors * fields;
        group.bench_with_input(
            BenchmarkId::new("generate", format!("{actors}a_{fields}f_{variables}vars")),
            &system,
            |b, system| b.iter(|| black_box(system.generate_lts().expect("generates"))),
        );
    }
    // Ablation: the potential-read exploration on a mid-sized model.
    let system = scaled_system(4, 6).expect("scaled system builds");
    group.bench_function("generate_with_potential_reads_4a_6f", |b| {
        let config = GeneratorConfig::default().with_potential_reads().with_max_states(2_000_000);
        b.iter(|| black_box(system.generate_lts_with(&config).expect("generates")))
    });
    group.finish();
}

fn bench_runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_runtime_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let system = casestudy::healthcare().expect("fixture builds");
    for requests in [50usize, 200] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_workload", requests),
            &requests,
            |b, &requests| {
                b.iter(|| {
                    let engine = ServiceEngine::new(
                        system.catalog().clone(),
                        system.dataflows().clone(),
                        system.policy().clone(),
                    );
                    let mut monitor =
                        RuntimeMonitor::new(system.catalog().clone(), system.policy().clone());
                    let users: Vec<UserId> =
                        (0..20).map(|i| UserId::new(format!("u{i}"))).collect();
                    for user in &users {
                        monitor.register_user(
                            &UserProfile::new(user.as_str())
                                .consents_to(casestudy::medical_service())
                                .with_category_sensitivity(
                                    casestudy::fields::diagnosis(),
                                    SensitivityCategory::High,
                                ),
                        );
                    }
                    let workload = random_workload(&WorkloadConfig {
                        length: requests,
                        users,
                        services: vec![
                            (casestudy::medical_service(), 0.8),
                            (casestudy::research_service(), 0.2),
                        ],
                        ..WorkloadConfig::default()
                    });
                    let outcome = run_concurrent_workload(
                        engine,
                        monitor,
                        &workload,
                        ConcurrentConfig { workers: 4 },
                        |_| Record::new().with("Name", "x").with("Diagnosis", "d"),
                    );
                    black_box(outcome.alerts.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lts_scaling, bench_runtime_scaling);
criterion_main!(benches);
