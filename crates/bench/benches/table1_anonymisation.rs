//! Table I — 2-anonymisation and the per-record value-risk computation.
//!
//! Measures the k-anonymiser on the paper's six records and on larger
//! synthetic populations, and the value-risk scoring for each of Table I's
//! quasi-identifier combinations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privacy_anonymity::{value_risk, Hierarchy, KAnonymizer, ValueRiskPolicy};
use privacy_model::FieldId;
use privacy_synth::{
    random_health_records, table1_raw_records, table1_release, RecordGeneratorConfig,
};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let age = FieldId::new("Age");
    let height = FieldId::new("Height");
    let mut group = c.benchmark_group("table1_anonymisation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("two_anonymise_paper_records", |b| {
        let raw = table1_raw_records();
        let anonymiser = KAnonymizer::new(2)
            .with_hierarchy(age.clone(), Hierarchy::numeric([10.0, 20.0, 40.0]))
            .with_hierarchy(height.clone(), Hierarchy::numeric([20.0, 40.0]));
        b.iter(|| {
            black_box(
                anonymiser.anonymise(&raw, &[age.clone(), height.clone()]).expect("anonymises"),
            )
        })
    });

    let release = table1_release();
    let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
    for (label, visible) in [
        ("height_only", vec![height.clone()]),
        ("age_only", vec![age.clone()]),
        ("age_and_height", vec![age.clone(), height.clone()]),
    ] {
        group.bench_function(format!("value_risk_{label}"), |b| {
            b.iter(|| black_box(value_risk(&release, &visible, &policy).expect("scores")))
        });
    }

    // Scaling: anonymise and score growing synthetic populations.
    for count in [100usize, 1_000, 5_000] {
        let data = random_health_records(&RecordGeneratorConfig::with_count(count));
        let anonymiser = KAnonymizer::new(2)
            .with_hierarchy(age.clone(), Hierarchy::numeric([10.0, 20.0, 40.0]))
            .with_hierarchy(height.clone(), Hierarchy::numeric([20.0, 40.0]));
        group.bench_with_input(BenchmarkId::new("anonymise_and_score", count), &data, |b, data| {
            b.iter(|| {
                let result =
                    anonymiser.anonymise(data, &[age.clone(), height.clone()]).expect("anonymises");
                let report = value_risk(result.data(), &[age.clone(), height.clone()], &policy)
                    .expect("scores");
                black_box(report.violation_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
