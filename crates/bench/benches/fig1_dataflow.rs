//! Fig. 1 — constructing and validating the healthcare data-flow model.
//!
//! Measures how long the design artefacts (catalog, diagrams, policy) take to
//! build, validate and export, i.e. the developer-facing step of the method.

use criterion::{criterion_group, criterion_main, Criterion};
use privacy_core::casestudy;
use privacy_dataflow::dot::system_to_dot;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_dataflow");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("build_healthcare_model", |b| {
        b.iter(|| black_box(casestudy::healthcare().expect("fixture builds")))
    });

    let system = casestudy::healthcare().expect("fixture builds");
    group.bench_function("validate_healthcare_model", |b| {
        b.iter(|| black_box(system.validate().expect("validates")))
    });

    group.bench_function("export_dot", |b| b.iter(|| black_box(system_to_dot(system.dataflows()))));

    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
