//! # privacy-model
//!
//! Domain vocabulary for the model-driven privacy-risk framework described in
//! *"Identifying Privacy Risks in Distributed Data Services: A Model-Driven
//! Approach"* (Grace et al., ICDCS 2018).
//!
//! This crate defines the metamodel every other crate in the workspace builds
//! upon:
//!
//! * identifiers for actors, data fields, schemas, datastores, services,
//!   users and roles ([`ids`]);
//! * descriptions of personal-data fields and schemas ([`field`]);
//! * actors and actor kinds ([`actor`]);
//! * purposes of processing ([`purpose`]);
//! * user sensitivities, sensitivity categories and profiles
//!   ([`sensitivity`]);
//! * consent to services and the derived allowed/non-allowed actor partition
//!   ([`consent`]);
//! * user profiles combining sensitivities and consent ([`user`]);
//! * concrete data values, records and datasets used by the anonymisation and
//!   synthetic-data crates ([`value`]);
//! * the shared [`catalog::Catalog`] registering every element of a system
//!   model;
//! * the common risk vocabulary (low / medium / high) used to label impact,
//!   likelihood and combined risk ([`risk_level`]); and
//! * dense index interning of identifiers for hot paths ([`intern`]).
//!
//! # Example
//!
//! ```
//! use privacy_model::prelude::*;
//!
//! # fn main() -> Result<(), ModelError> {
//! let mut catalog = Catalog::new();
//! catalog.add_actor(Actor::role("Doctor"))?;
//! catalog.add_field(DataField::sensitive("Diagnosis"))?;
//! catalog.add_schema(DataSchema::new("EHR", [FieldId::new("Diagnosis")]))?;
//! assert!(catalog.actor(&ActorId::new("Doctor")).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod catalog;
pub mod consent;
pub mod error;
pub mod field;
pub mod ids;
pub mod intern;
pub mod purpose;
pub mod risk_level;
pub mod sensitivity;
pub mod user;
pub mod value;

pub use actor::{Actor, ActorKind};
pub use catalog::{Catalog, DatastoreDecl, ServiceDecl};
pub use consent::Consent;
pub use error::ModelError;
pub use field::{DataField, DataSchema, FieldKind};
pub use ids::{ActorId, DatastoreId, FieldId, RoleId, SchemaId, ServiceId, UserId};
pub use intern::Interner;
pub use purpose::Purpose;
pub use risk_level::{Likelihood, RiskLevel, Severity};
pub use sensitivity::{Sensitivity, SensitivityCategory, SensitivityProfile};
pub use user::UserProfile;
pub use value::{Dataset, Record, Value};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::actor::{Actor, ActorKind};
    pub use crate::catalog::{Catalog, DatastoreDecl, ServiceDecl};
    pub use crate::consent::Consent;
    pub use crate::error::ModelError;
    pub use crate::field::{DataField, DataSchema, FieldKind};
    pub use crate::ids::{ActorId, DatastoreId, FieldId, RoleId, SchemaId, ServiceId, UserId};
    pub use crate::intern::Interner;
    pub use crate::purpose::Purpose;
    pub use crate::risk_level::{Likelihood, RiskLevel, Severity};
    pub use crate::sensitivity::{Sensitivity, SensitivityCategory, SensitivityProfile};
    pub use crate::user::UserProfile;
    pub use crate::value::{Dataset, Record, Value};
}
