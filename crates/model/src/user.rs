//! User profiles: the per-user inputs to risk analysis.
//!
//! Section III-A of the paper assumes two pieces of information about the
//! user: (1) which services they agree to use, and (2) their sensitivities
//! about particular fields. A [`UserProfile`] bundles both, together with the
//! user's identifier; risk analysis *"takes the user privacy control
//! requirements and annotates the model with their risk; hence there is an
//! instance for each user"*.

use crate::consent::Consent;
use crate::ids::{FieldId, ServiceId, UserId};
use crate::sensitivity::{Sensitivity, SensitivityCategory, SensitivityProfile};
use std::fmt;

/// The privacy-control requirements of one user of the system.
///
/// # Example
///
/// ```
/// use privacy_model::prelude::*;
///
/// let user = UserProfile::new("patient-1")
///     .consents_to(ServiceId::new("MedicalService"))
///     .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High);
///
/// assert!(user.consent().includes(&ServiceId::new("MedicalService")));
/// assert_eq!(
///     user.sensitivities().sensitivity(&FieldId::new("Diagnosis")).category(),
///     SensitivityCategory::High
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserProfile {
    id: UserId,
    consent: Consent,
    sensitivities: SensitivityProfile,
}

impl UserProfile {
    /// Creates a profile for the given user with no consent and no declared
    /// sensitivities.
    pub fn new(id: impl Into<UserId>) -> Self {
        UserProfile {
            id: id.into(),
            consent: Consent::none(),
            sensitivities: SensitivityProfile::new(),
        }
    }

    /// Builder-style: records consent to a service.
    pub fn consents_to(mut self, service: ServiceId) -> Self {
        self.consent.grant(service);
        self
    }

    /// Builder-style: sets a quantitative sensitivity for a field.
    pub fn with_sensitivity(mut self, field: FieldId, sensitivity: Sensitivity) -> Self {
        self.sensitivities.set(field, sensitivity);
        self
    }

    /// Builder-style: sets a categorical sensitivity for a field.
    pub fn with_category_sensitivity(
        mut self,
        field: FieldId,
        category: SensitivityCategory,
    ) -> Self {
        self.sensitivities.set_category(field, category);
        self
    }

    /// Builder-style: replaces the whole sensitivity profile.
    pub fn with_sensitivities(mut self, sensitivities: SensitivityProfile) -> Self {
        self.sensitivities = sensitivities;
        self
    }

    /// Builder-style: replaces the whole consent set.
    pub fn with_consent(mut self, consent: Consent) -> Self {
        self.consent = consent;
        self
    }

    /// The user's identifier.
    pub fn id(&self) -> &UserId {
        &self.id
    }

    /// The user's consent.
    pub fn consent(&self) -> &Consent {
        &self.consent
    }

    /// Mutable access to the user's consent (e.g. to model a user granting
    /// or withdrawing consent while the system is running).
    pub fn consent_mut(&mut self) -> &mut Consent {
        &mut self.consent
    }

    /// The user's sensitivity profile.
    pub fn sensitivities(&self) -> &SensitivityProfile {
        &self.sensitivities
    }

    /// Mutable access to the user's sensitivity profile.
    pub fn sensitivities_mut(&mut self) -> &mut SensitivityProfile {
        &mut self.sensitivities
    }
}

impl fmt::Display for UserProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "user {} ({} consented services, {} declared sensitivities)",
            self.id,
            self.consent.len(),
            self.sensitivities.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_consent_and_sensitivities() {
        let user = UserProfile::new("u1")
            .consents_to(ServiceId::new("A"))
            .consents_to(ServiceId::new("B"))
            .with_sensitivity(FieldId::new("x"), Sensitivity::clamped(0.4))
            .with_category_sensitivity(FieldId::new("y"), SensitivityCategory::High);

        assert_eq!(user.id().as_str(), "u1");
        assert_eq!(user.consent().len(), 2);
        assert_eq!(user.sensitivities().len(), 2);
        assert_eq!(user.sensitivities().sensitivity(&FieldId::new("x")).value(), 0.4);
    }

    #[test]
    fn replacing_consent_and_profile_wholesale() {
        let consent = Consent::to([ServiceId::new("S")]);
        let mut profile = SensitivityProfile::new();
        profile.set(FieldId::new("f"), Sensitivity::MAX);

        let user = UserProfile::new("u2")
            .with_consent(consent.clone())
            .with_sensitivities(profile.clone());
        assert_eq!(user.consent(), &consent);
        assert_eq!(user.sensitivities(), &profile);
    }

    #[test]
    fn mutable_accessors_allow_runtime_changes() {
        let mut user = UserProfile::new("u3").consents_to(ServiceId::new("S"));
        user.consent_mut().withdraw(&ServiceId::new("S"));
        assert!(user.consent().is_empty());
        user.sensitivities_mut().set(FieldId::new("f"), Sensitivity::MAX);
        assert_eq!(user.sensitivities().sensitivity(&FieldId::new("f")), Sensitivity::MAX);
    }

    #[test]
    fn display_summarises_profile() {
        let user = UserProfile::new("u4").consents_to(ServiceId::new("S"));
        assert_eq!(user.to_string(), "user u4 (1 consented services, 0 declared sensitivities)");
    }
}
