//! Personal-data fields and the schemas that group them.
//!
//! A [`DataField`] describes one item of personal data (e.g. `Name`,
//! `Diagnosis`). Fields are classified ([`FieldKind`]) so anonymisation and
//! risk analysis can treat direct identifiers, quasi-identifiers and
//! sensitive attributes differently. A [`DataSchema`] is the ordered set of
//! fields held by a datastore.

use crate::error::ModelError;
use crate::ids::{FieldId, SchemaId};
use std::collections::BTreeSet;
use std::fmt;

/// Classification of a personal-data field.
///
/// The classification follows the standard disclosure-control terminology
/// used by the paper's pseudonymisation risk analysis (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FieldKind {
    /// Directly identifies the data subject (e.g. `Name`, `NHS number`).
    Identifier,
    /// Does not identify on its own but can in combination with other
    /// quasi-identifiers (e.g. `Age`, `Height`, `Date of Birth`).
    QuasiIdentifier,
    /// A sensitive attribute whose value the data subject may want to keep
    /// private (e.g. `Diagnosis`, `Weight`).
    Sensitive,
    /// Any other personal data field.
    Other,
}

impl fmt::Display for FieldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FieldKind::Identifier => "identifier",
            FieldKind::QuasiIdentifier => "quasi-identifier",
            FieldKind::Sensitive => "sensitive",
            FieldKind::Other => "other",
        };
        f.write_str(name)
    }
}

/// One item of personal data.
///
/// # Example
///
/// ```
/// use privacy_model::{DataField, FieldKind};
///
/// let diagnosis = DataField::sensitive("Diagnosis");
/// assert_eq!(diagnosis.kind(), FieldKind::Sensitive);
/// assert!(!diagnosis.is_pseudonymised());
///
/// let anon = diagnosis.pseudonymised();
/// assert!(anon.is_pseudonymised());
/// assert_eq!(anon.original(), Some(diagnosis.id().clone()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataField {
    id: FieldId,
    kind: FieldKind,
    display_name: String,
    description: String,
}

impl DataField {
    /// Creates a field of the given kind.
    pub fn new(id: impl Into<FieldId>, kind: FieldKind) -> Self {
        let id = id.into();
        let display_name = id.as_str().to_owned();
        DataField { id, kind, display_name, description: String::new() }
    }

    /// Creates a direct identifier field.
    pub fn identifier(id: impl Into<FieldId>) -> Self {
        DataField::new(id, FieldKind::Identifier)
    }

    /// Creates a quasi-identifier field.
    pub fn quasi_identifier(id: impl Into<FieldId>) -> Self {
        DataField::new(id, FieldKind::QuasiIdentifier)
    }

    /// Creates a sensitive field.
    pub fn sensitive(id: impl Into<FieldId>) -> Self {
        DataField::new(id, FieldKind::Sensitive)
    }

    /// Creates a field with no special classification.
    pub fn other(id: impl Into<FieldId>) -> Self {
        DataField::new(id, FieldKind::Other)
    }

    /// Overrides the human readable display name.
    pub fn with_display_name(mut self, name: impl Into<String>) -> Self {
        self.display_name = name.into();
        self
    }

    /// Attaches a description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The field identifier.
    pub fn id(&self) -> &FieldId {
        &self.id
    }

    /// The field classification.
    pub fn kind(&self) -> FieldKind {
        self.kind
    }

    /// The human readable display name.
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// The description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Returns the pseudonymised counterpart of this field.
    ///
    /// The counterpart keeps the same classification but carries the
    /// `_anon`-suffixed identifier, matching the paper's treatment of
    /// `weight_anon` as a distinct field with its own access-control state
    /// variables.
    pub fn pseudonymised(&self) -> DataField {
        DataField {
            id: self.id.anonymised(),
            kind: self.kind,
            display_name: format!("{} (pseudonymised)", self.display_name),
            description: self.description.clone(),
        }
    }

    /// Returns `true` if this field is a pseudonymised counterpart.
    pub fn is_pseudonymised(&self) -> bool {
        self.id.is_anonymised()
    }

    /// Returns the original field identifier if this field is pseudonymised.
    pub fn original(&self) -> Option<FieldId> {
        self.id.original()
    }
}

impl fmt::Display for DataField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.id, self.kind)
    }
}

/// The ordered set of fields held by a datastore.
///
/// # Example
///
/// ```
/// use privacy_model::{DataSchema, FieldId};
///
/// let schema = DataSchema::new("EHR", [FieldId::new("Name"), FieldId::new("Diagnosis")]);
/// assert!(schema.contains(&FieldId::new("Name")));
/// assert_eq!(schema.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSchema {
    id: SchemaId,
    fields: Vec<FieldId>,
}

impl DataSchema {
    /// Creates a schema from an identifier and an iterator of field ids.
    ///
    /// Duplicate field identifiers are collapsed, preserving first-seen
    /// order.
    pub fn new(id: impl Into<SchemaId>, fields: impl IntoIterator<Item = FieldId>) -> Self {
        let mut seen = BTreeSet::new();
        let mut unique = Vec::new();
        for field in fields {
            if seen.insert(field.clone()) {
                unique.push(field);
            }
        }
        DataSchema { id: id.into(), fields: unique }
    }

    /// Creates an empty schema.
    pub fn empty(id: impl Into<SchemaId>) -> Self {
        DataSchema { id: id.into(), fields: Vec::new() }
    }

    /// The schema identifier.
    pub fn id(&self) -> &SchemaId {
        &self.id
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// Number of fields in the schema.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns `true` if the schema contains the given field.
    pub fn contains(&self, field: &FieldId) -> bool {
        self.fields.iter().any(|f| f == field)
    }

    /// Adds a field to the schema if not already present. Returns an error if
    /// the field is already part of the schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if the field is already present.
    pub fn add_field(&mut self, field: FieldId) -> Result<(), ModelError> {
        if self.contains(&field) {
            return Err(ModelError::duplicate("schema field", field.as_str()));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Returns a new schema whose fields are the pseudonymised counterparts
    /// of this schema's fields.
    pub fn pseudonymised(&self, id: impl Into<SchemaId>) -> DataSchema {
        DataSchema { id: id.into(), fields: self.fields.iter().map(FieldId::anonymised).collect() }
    }

    /// Iterates over the fields of the schema.
    pub fn iter(&self) -> impl Iterator<Item = &FieldId> {
        self.fields.iter()
    }
}

impl fmt::Display for DataSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_constructors_set_kind() {
        assert_eq!(DataField::identifier("Name").kind(), FieldKind::Identifier);
        assert_eq!(DataField::quasi_identifier("Age").kind(), FieldKind::QuasiIdentifier);
        assert_eq!(DataField::sensitive("Diagnosis").kind(), FieldKind::Sensitive);
        assert_eq!(DataField::other("Notes").kind(), FieldKind::Other);
    }

    #[test]
    fn pseudonymised_field_keeps_kind_and_links_back() {
        let weight = DataField::sensitive("Weight").with_description("kg");
        let anon = weight.pseudonymised();
        assert_eq!(anon.kind(), FieldKind::Sensitive);
        assert!(anon.is_pseudonymised());
        assert_eq!(anon.original(), Some(FieldId::new("Weight")));
        assert_eq!(anon.description(), "kg");
        assert!(anon.display_name().contains("pseudonymised"));
    }

    #[test]
    fn display_name_defaults_to_id_and_can_be_overridden() {
        let field = DataField::other("DOB");
        assert_eq!(field.display_name(), "DOB");
        let field = field.with_display_name("Date of Birth");
        assert_eq!(field.display_name(), "Date of Birth");
    }

    #[test]
    fn schema_deduplicates_fields_preserving_order() {
        let schema = DataSchema::new(
            "S",
            [FieldId::new("b"), FieldId::new("a"), FieldId::new("b"), FieldId::new("c")],
        );
        let order: Vec<_> = schema.fields().iter().map(FieldId::as_str).collect();
        assert_eq!(order, vec!["b", "a", "c"]);
        assert_eq!(schema.len(), 3);
    }

    #[test]
    fn schema_add_field_rejects_duplicates() {
        let mut schema = DataSchema::empty("S");
        assert!(schema.is_empty());
        schema.add_field(FieldId::new("x")).unwrap();
        let err = schema.add_field(FieldId::new("x")).unwrap_err();
        assert!(matches!(err, ModelError::Duplicate { .. }));
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn pseudonymised_schema_maps_every_field() {
        let schema = DataSchema::new("EHR", [FieldId::new("Age"), FieldId::new("Weight")]);
        let anon = schema.pseudonymised("EHR_anon");
        assert_eq!(anon.id().as_str(), "EHR_anon");
        assert!(anon.contains(&FieldId::new("Age_anon")));
        assert!(anon.contains(&FieldId::new("Weight_anon")));
        assert_eq!(anon.len(), 2);
    }

    #[test]
    fn schema_display_lists_fields() {
        let schema = DataSchema::new("S", [FieldId::new("a"), FieldId::new("b")]);
        assert_eq!(schema.to_string(), "S{a, b}");
    }

    #[test]
    fn field_display_contains_kind() {
        assert_eq!(DataField::sensitive("Diagnosis").to_string(), "Diagnosis [sensitive]");
    }
}
