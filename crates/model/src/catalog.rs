//! The system catalog: the shared registry of every modelled element.
//!
//! The data-flow diagrams, access-control policies, generated LTS and risk
//! analyses all refer to the same actors, fields, schemas, datastores and
//! services. The [`Catalog`] is the single source of truth for those
//! declarations; downstream crates validate their references against it.

use crate::actor::Actor;
use crate::error::ModelError;
use crate::field::{DataField, DataSchema};
use crate::ids::{ActorId, DatastoreId, FieldId, SchemaId, ServiceId};
use std::collections::BTreeMap;
use std::fmt;

/// Declaration of a datastore: its identifier, the schema it stores and
/// whether it stores anonymised (pseudonymised) data.
///
/// The anonymised flag drives the extraction rules of Section II-B: a flow
/// from an actor into an anonymised datastore is an `anon` action rather than
/// a `create` action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatastoreDecl {
    id: DatastoreId,
    schema: SchemaId,
    anonymised: bool,
}

impl DatastoreDecl {
    /// Declares a regular datastore.
    pub fn new(id: impl Into<DatastoreId>, schema: impl Into<SchemaId>) -> Self {
        DatastoreDecl { id: id.into(), schema: schema.into(), anonymised: false }
    }

    /// Declares an anonymised datastore.
    pub fn anonymised(id: impl Into<DatastoreId>, schema: impl Into<SchemaId>) -> Self {
        DatastoreDecl { id: id.into(), schema: schema.into(), anonymised: true }
    }

    /// The datastore identifier.
    pub fn id(&self) -> &DatastoreId {
        &self.id
    }

    /// The identifier of the schema stored by this datastore.
    pub fn schema(&self) -> &SchemaId {
        &self.schema
    }

    /// Returns `true` if the datastore stores anonymised data.
    pub fn is_anonymised(&self) -> bool {
        self.anonymised
    }
}

impl fmt::Display for DatastoreDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.anonymised {
            write!(f, "{} [{} | anonymised]", self.id, self.schema)
        } else {
            write!(f, "{} [{}]", self.id, self.schema)
        }
    }
}

/// Declaration of a service: its identifier and the actors involved in
/// providing it.
///
/// Risk analysis derives the allowed-actor set for a user from the services
/// the user consented to (the union of the involved actors of those
/// services).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDecl {
    id: ServiceId,
    actors: Vec<ActorId>,
    description: String,
}

impl ServiceDecl {
    /// Declares a service provided by the given actors.
    pub fn new(id: impl Into<ServiceId>, actors: impl IntoIterator<Item = ActorId>) -> Self {
        ServiceDecl {
            id: id.into(),
            actors: actors.into_iter().collect(),
            description: String::new(),
        }
    }

    /// Attaches a human readable description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The service identifier.
    pub fn id(&self) -> &ServiceId {
        &self.id
    }

    /// The actors involved in providing this service.
    pub fn actors(&self) -> &[ActorId] {
        &self.actors
    }

    /// The description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Returns `true` if the given actor participates in this service.
    pub fn involves(&self, actor: &ActorId) -> bool {
        self.actors.iter().any(|a| a == actor)
    }
}

impl fmt::Display for ServiceDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service {} ({} actors)", self.id, self.actors.len())
    }
}

/// The registry of every declared element of the system model.
///
/// # Example
///
/// ```
/// use privacy_model::prelude::*;
///
/// # fn main() -> Result<(), ModelError> {
/// let mut catalog = Catalog::new();
/// catalog.add_actor(Actor::role("Doctor"))?;
/// catalog.add_field(DataField::sensitive("Diagnosis"))?;
/// catalog.add_schema(DataSchema::new("EHR", [FieldId::new("Diagnosis")]))?;
/// catalog.add_datastore(DatastoreDecl::new("EHR-store", "EHR"))?;
/// catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")]))?;
///
/// assert_eq!(catalog.actor_count(), 1);
/// assert!(catalog.validate().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Catalog {
    actors: BTreeMap<ActorId, Actor>,
    fields: BTreeMap<FieldId, DataField>,
    schemas: BTreeMap<SchemaId, DataSchema>,
    datastores: BTreeMap<DatastoreId, DatastoreDecl>,
    services: BTreeMap<ServiceId, ServiceDecl>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers an actor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if an actor with the same id exists.
    pub fn add_actor(&mut self, actor: Actor) -> Result<&mut Self, ModelError> {
        if self.actors.contains_key(actor.id()) {
            return Err(ModelError::duplicate("actor", actor.id().as_str()));
        }
        self.actors.insert(actor.id().clone(), actor);
        Ok(self)
    }

    /// Registers a data field.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a field with the same id exists.
    pub fn add_field(&mut self, field: DataField) -> Result<&mut Self, ModelError> {
        if self.fields.contains_key(field.id()) {
            return Err(ModelError::duplicate("field", field.id().as_str()));
        }
        self.fields.insert(field.id().clone(), field);
        Ok(self)
    }

    /// Registers a field together with its pseudonymised counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if either field already exists.
    pub fn add_field_with_anonymised(&mut self, field: DataField) -> Result<&mut Self, ModelError> {
        let anonymised = field.pseudonymised();
        self.add_field(field)?;
        self.add_field(anonymised)?;
        Ok(self)
    }

    /// Registers a schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a schema with the same id exists.
    pub fn add_schema(&mut self, schema: DataSchema) -> Result<&mut Self, ModelError> {
        if self.schemas.contains_key(schema.id()) {
            return Err(ModelError::duplicate("schema", schema.id().as_str()));
        }
        self.schemas.insert(schema.id().clone(), schema);
        Ok(self)
    }

    /// Registers a datastore declaration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a datastore with the same id
    /// exists.
    pub fn add_datastore(&mut self, datastore: DatastoreDecl) -> Result<&mut Self, ModelError> {
        if self.datastores.contains_key(datastore.id()) {
            return Err(ModelError::duplicate("datastore", datastore.id().as_str()));
        }
        self.datastores.insert(datastore.id().clone(), datastore);
        Ok(self)
    }

    /// Registers a service declaration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a service with the same id
    /// exists.
    pub fn add_service(&mut self, service: ServiceDecl) -> Result<&mut Self, ModelError> {
        if self.services.contains_key(service.id()) {
            return Err(ModelError::duplicate("service", service.id().as_str()));
        }
        self.services.insert(service.id().clone(), service);
        Ok(self)
    }

    /// Looks up an actor.
    pub fn actor(&self, id: &ActorId) -> Option<&Actor> {
        self.actors.get(id)
    }

    /// Looks up a field.
    pub fn field(&self, id: &FieldId) -> Option<&DataField> {
        self.fields.get(id)
    }

    /// Looks up a schema.
    pub fn schema(&self, id: &SchemaId) -> Option<&DataSchema> {
        self.schemas.get(id)
    }

    /// Looks up a datastore.
    pub fn datastore(&self, id: &DatastoreId) -> Option<&DatastoreDecl> {
        self.datastores.get(id)
    }

    /// Looks up a service.
    pub fn service(&self, id: &ServiceId) -> Option<&ServiceDecl> {
        self.services.get(id)
    }

    /// The schema stored by a datastore, resolving the indirection.
    pub fn datastore_schema(&self, id: &DatastoreId) -> Option<&DataSchema> {
        self.datastores.get(id).and_then(|d| self.schemas.get(d.schema()))
    }

    /// Iterates over the registered actors in id order.
    pub fn actors(&self) -> impl Iterator<Item = &Actor> {
        self.actors.values()
    }

    /// Iterates over the registered fields in id order.
    pub fn fields(&self) -> impl Iterator<Item = &DataField> {
        self.fields.values()
    }

    /// Iterates over the registered schemas in id order.
    pub fn schemas(&self) -> impl Iterator<Item = &DataSchema> {
        self.schemas.values()
    }

    /// Iterates over the registered datastores in id order.
    pub fn datastores(&self) -> impl Iterator<Item = &DatastoreDecl> {
        self.datastores.values()
    }

    /// Iterates over the registered services in id order.
    pub fn services(&self) -> impl Iterator<Item = &ServiceDecl> {
        self.services.values()
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of registered fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Number of registered datastores.
    pub fn datastore_count(&self) -> usize {
        self.datastores.len()
    }

    /// Number of registered services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// The actors (other than data subjects) that can identify personal data.
    ///
    /// These are the actors that contribute state variables to the generated
    /// LTS (Section II-B counts `2 × |actors| × |fields|` variables with the
    /// five non-data-subject actors of the healthcare example).
    pub fn identifying_actors(&self) -> impl Iterator<Item = &Actor> {
        self.actors.values().filter(|a| !a.is_data_subject())
    }

    /// The set of actors allowed for a user who consented to the given
    /// services: the union of involved actors across those services.
    pub fn allowed_actors<'a>(
        &'a self,
        services: impl IntoIterator<Item = &'a ServiceId>,
    ) -> Vec<ActorId> {
        let mut allowed: Vec<ActorId> = Vec::new();
        for service in services {
            if let Some(decl) = self.services.get(service) {
                for actor in decl.actors() {
                    if !allowed.contains(actor) {
                        allowed.push(actor.clone());
                    }
                }
            }
        }
        allowed.sort();
        allowed
    }

    /// The services an actor participates in.
    pub fn services_of_actor(&self, actor: &ActorId) -> Vec<&ServiceDecl> {
        self.services.values().filter(|s| s.involves(actor)).collect()
    }

    /// Checks referential integrity of the catalog:
    ///
    /// * every schema field must be a registered field;
    /// * every datastore must reference a registered schema;
    /// * every service actor must be a registered actor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] naming the first dangling reference.
    pub fn validate(&self) -> Result<(), ModelError> {
        for schema in self.schemas.values() {
            for field in schema.fields() {
                if !self.fields.contains_key(field) {
                    return Err(ModelError::unknown("field", field.as_str()));
                }
            }
        }
        for datastore in self.datastores.values() {
            if !self.schemas.contains_key(datastore.schema()) {
                return Err(ModelError::unknown("schema", datastore.schema().as_str()));
            }
        }
        for service in self.services.values() {
            for actor in service.actors() {
                if !self.actors.contains_key(actor) {
                    return Err(ModelError::unknown("actor", actor.as_str()));
                }
            }
        }
        Ok(())
    }

    /// The number of Boolean state variables the generated LTS will carry:
    /// `2 × |identifying actors| × |fields|`.
    ///
    /// For the paper's healthcare example (5 actors, 6 fields) this is 60.
    pub fn state_variable_count(&self) -> usize {
        2 * self.identifying_actors().count() * self.fields.len()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "catalog: {} actors, {} fields, {} schemas, {} datastores, {} services",
            self.actors.len(),
            self.fields.len(),
            self.schemas.len(),
            self.datastores.len(),
            self.services.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::data_subject("Patient")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new("EHR", [FieldId::new("Name"), FieldId::new("Diagnosis")]))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR-store", "EHR")).unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();
        catalog
            .add_service(ServiceDecl::new("ResearchService", [ActorId::new("Researcher")]))
            .unwrap();
        catalog
    }

    #[test]
    fn duplicates_are_rejected_for_every_element_kind() {
        let mut catalog = sample_catalog();
        assert!(catalog.add_actor(Actor::role("Doctor")).is_err());
        assert!(catalog.add_field(DataField::identifier("Name")).is_err());
        assert!(catalog.add_schema(DataSchema::empty("EHR")).is_err());
        assert!(catalog.add_datastore(DatastoreDecl::new("EHR-store", "EHR")).is_err());
        assert!(catalog.add_service(ServiceDecl::new("MedicalService", [])).is_err());
    }

    #[test]
    fn lookups_resolve_registered_elements() {
        let catalog = sample_catalog();
        assert!(catalog.actor(&ActorId::new("Doctor")).is_some());
        assert!(catalog.field(&FieldId::new("Diagnosis")).is_some());
        assert!(catalog.schema(&SchemaId::new("EHR")).is_some());
        assert!(catalog.datastore(&DatastoreId::new("EHR-store")).is_some());
        assert!(catalog.service(&ServiceId::new("MedicalService")).is_some());
        assert!(catalog.actor(&ActorId::new("Nobody")).is_none());
        let schema = catalog.datastore_schema(&DatastoreId::new("EHR-store")).unwrap();
        assert_eq!(schema.id().as_str(), "EHR");
    }

    #[test]
    fn validation_detects_dangling_references() {
        let mut catalog = sample_catalog();
        assert!(catalog.validate().is_ok());

        catalog.add_schema(DataSchema::new("Broken", [FieldId::new("Missing")])).unwrap();
        assert!(matches!(catalog.validate(), Err(ModelError::Unknown { .. })));

        let mut catalog = sample_catalog();
        catalog.add_datastore(DatastoreDecl::new("Orphan", "NoSchema")).unwrap();
        assert!(catalog.validate().is_err());

        let mut catalog = sample_catalog();
        catalog.add_service(ServiceDecl::new("Ghost", [ActorId::new("Nobody")])).unwrap();
        assert!(catalog.validate().is_err());
    }

    #[test]
    fn identifying_actors_exclude_the_data_subject() {
        let catalog = sample_catalog();
        let ids: Vec<_> = catalog.identifying_actors().map(|a| a.id().as_str()).collect();
        assert_eq!(ids, vec!["Doctor", "Researcher"]);
    }

    #[test]
    fn allowed_actors_follow_consented_services() {
        let catalog = sample_catalog();
        let medical = ServiceId::new("MedicalService");
        let research = ServiceId::new("ResearchService");

        let allowed = catalog.allowed_actors([&medical]);
        assert_eq!(allowed, vec![ActorId::new("Doctor")]);

        let allowed = catalog.allowed_actors([&medical, &research]);
        assert_eq!(allowed, vec![ActorId::new("Doctor"), ActorId::new("Researcher")]);

        let allowed = catalog.allowed_actors([&ServiceId::new("Unknown")]);
        assert!(allowed.is_empty());
    }

    #[test]
    fn state_variable_count_matches_the_paper_formula() {
        // 2 identifying actors × 2 fields × 2 (has / could) = 8.
        assert_eq!(sample_catalog().state_variable_count(), 8);
    }

    #[test]
    fn add_field_with_anonymised_registers_both() {
        let mut catalog = Catalog::new();
        catalog.add_field_with_anonymised(DataField::sensitive("Weight")).unwrap();
        assert!(catalog.field(&FieldId::new("Weight")).is_some());
        assert!(catalog.field(&FieldId::new("Weight_anon")).is_some());
        assert_eq!(catalog.field_count(), 2);
    }

    #[test]
    fn services_of_actor_lists_participations() {
        let catalog = sample_catalog();
        let services = catalog.services_of_actor(&ActorId::new("Doctor"));
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].id().as_str(), "MedicalService");
        assert!(catalog.services_of_actor(&ActorId::new("Nobody")).is_empty());
    }

    #[test]
    fn display_summarises_counts() {
        let catalog = sample_catalog();
        assert_eq!(
            catalog.to_string(),
            "catalog: 3 actors, 2 fields, 1 schemas, 1 datastores, 2 services"
        );
        assert_eq!(
            catalog.datastore(&DatastoreId::new("EHR-store")).unwrap().to_string(),
            "EHR-store [EHR]"
        );
    }
}
