//! Concrete data values, records and datasets.
//!
//! The pseudonymisation-risk analysis of Section III-B operates on concrete
//! data (simulated at design time, real at run time): records are masked,
//! partitioned into equivalence classes and per-record value risks are
//! computed. [`Value`], [`Record`] and [`Dataset`] are the representation
//! shared by the anonymisation, synthetic-data and risk crates.

use crate::error::ModelError;
use crate::ids::FieldId;
use std::collections::BTreeMap;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Value {
    /// An integer value (e.g. an age in years).
    Int(i64),
    /// A floating point value (e.g. a weight in kilograms).
    Float(f64),
    /// A free-text value (e.g. a diagnosis code).
    Text(String),
    /// A Boolean value.
    Bool(bool),
    /// A half-open generalisation interval `[lo, hi)` produced by
    /// anonymisation (e.g. the paper's `30-40` age band or `180-200` height
    /// band).
    Interval {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// A suppressed or missing value.
    Null,
}

impl Value {
    /// Creates an interval value, normalising the bound order.
    pub fn interval(lo: f64, hi: f64) -> Value {
        if hi < lo {
            Value::Interval { lo: hi, hi: lo }
        } else {
            Value::Interval { lo, hi }
        }
    }

    /// Returns the value as a floating point number if it is numeric.
    ///
    /// Intervals map to their midpoint, which is the standard choice when
    /// computing utility statistics over generalised data.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Interval { lo, hi } => Some((lo + hi) / 2.0),
            _ => None,
        }
    }

    /// Returns the text content if the value is textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if the value is a generalisation interval.
    pub fn is_interval(&self) -> bool {
        matches!(self, Value::Interval { .. })
    }

    /// Returns `true` if a numeric value lies within an interval value, or if
    /// the two values are equal. Used when checking whether a generalised
    /// record is consistent with an original record.
    pub fn covers(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Interval { lo, hi }, other) => other
                .as_f64()
                .map(|v| v >= *lo && (v < *hi || (v == *hi && lo == hi)))
                .unwrap_or(false),
            (a, b) => a == b,
        }
    }

    /// Two values are "close" if their numeric distance is at most
    /// `tolerance`, or if they are exactly equal for non-numeric values.
    ///
    /// The paper's value-risk definition allows the user to specify a range
    /// so that `frequency(f)` counts *"the number of values in s which are
    /// close enough to the original value"*; this is that closeness test.
    pub fn is_close_to(&self, other: &Value, tolerance: f64) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => (a - b).abs() <= tolerance,
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Interval { lo, hi } => write!(f, "{lo}-{hi}"),
            Value::Null => f.write_str("*"),
        }
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Self {
        Value::Float(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::Text(value.to_owned())
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value::Text(value)
    }
}

impl From<bool> for Value {
    fn from(value: bool) -> Self {
        Value::Bool(value)
    }
}

/// One data record: a mapping from field identifiers to values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    values: BTreeMap<FieldId, Value>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Sets a field value, returning the previous value if any.
    pub fn set(&mut self, field: impl Into<FieldId>, value: impl Into<Value>) -> Option<Value> {
        self.values.insert(field.into(), value.into())
    }

    /// Builder-style field assignment.
    pub fn with(mut self, field: impl Into<FieldId>, value: impl Into<Value>) -> Self {
        self.set(field, value);
        self
    }

    /// The value of a field, if present.
    pub fn get(&self, field: &FieldId) -> Option<&Value> {
        self.values.get(field)
    }

    /// The value of a field, treating absence as [`Value::Null`].
    pub fn get_or_null(&self, field: &FieldId) -> Value {
        self.values.get(field).cloned().unwrap_or(Value::Null)
    }

    /// Removes a field from the record, returning its previous value.
    pub fn remove(&mut self, field: &FieldId) -> Option<Value> {
        self.values.remove(field)
    }

    /// Iterates over the fields of the record in field-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&FieldId, &Value)> {
        self.values.iter()
    }

    /// The set of field identifiers in the record.
    pub fn fields(&self) -> impl Iterator<Item = &FieldId> {
        self.values.keys()
    }

    /// Number of fields in the record.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the record holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns a copy of the record restricted to the given fields.
    pub fn project<'a>(&self, fields: impl IntoIterator<Item = &'a FieldId>) -> Record {
        let mut projected = Record::new();
        for field in fields {
            if let Some(value) = self.values.get(field) {
                projected.values.insert(field.clone(), value.clone());
            }
        }
        projected
    }

    /// Returns a key identifying the record's equivalence class with respect
    /// to the given fields: two records with equal keys are indistinguishable
    /// when only those fields are visible.
    pub fn class_key<'a>(&self, fields: impl IntoIterator<Item = &'a FieldId>) -> String {
        let mut key = String::new();
        for field in fields {
            key.push_str(field.as_str());
            key.push('=');
            key.push_str(&self.get_or_null(field).to_string());
            key.push('|');
        }
        key
    }
}

impl FromIterator<(FieldId, Value)> for Record {
    fn from_iter<T: IntoIterator<Item = (FieldId, Value)>>(iter: T) -> Self {
        Record { values: iter.into_iter().collect() }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (field, value)) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}: {value}")?;
        }
        f.write_str("}")
    }
}

/// An ordered collection of records sharing a column layout.
///
/// # Example
///
/// ```
/// use privacy_model::{Dataset, FieldId, Record};
///
/// let mut data = Dataset::new([FieldId::new("Age"), FieldId::new("Weight")]);
/// data.push(Record::new().with("Age", 30).with("Weight", 100.0));
/// data.push(Record::new().with("Age", 25).with("Weight", 80.0));
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.column(&FieldId::new("Age")).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    columns: Vec<FieldId>,
    records: Vec<Record>,
}

impl Dataset {
    /// Creates an empty dataset with the given column layout.
    pub fn new(columns: impl IntoIterator<Item = FieldId>) -> Self {
        Dataset { columns: columns.into_iter().collect(), records: Vec::new() }
    }

    /// Creates a dataset from a column layout and existing records.
    pub fn from_records(
        columns: impl IntoIterator<Item = FieldId>,
        records: impl IntoIterator<Item = Record>,
    ) -> Self {
        Dataset { columns: columns.into_iter().collect(), records: records.into_iter().collect() }
    }

    /// The declared columns.
    pub fn columns(&self) -> &[FieldId] {
        &self.columns
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// The records in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Mutable access to the records.
    pub fn records_mut(&mut self) -> &mut [Record] {
        &mut self.records
    }

    /// The record at `index`, if it exists.
    pub fn get(&self, index: usize) -> Option<&Record> {
        self.records.get(index)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// All values of a column (missing cells are skipped).
    pub fn column(&self, field: &FieldId) -> Vec<Value> {
        self.records.iter().filter_map(|r| r.get(field).cloned()).collect()
    }

    /// All numeric values of a column (non-numeric and missing cells are
    /// skipped; intervals contribute their midpoint).
    pub fn numeric_column(&self, field: &FieldId) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.get(field).and_then(Value::as_f64)).collect()
    }

    /// Checks that every record only uses declared columns.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] naming the first undeclared field
    /// encountered.
    pub fn validate(&self) -> Result<(), ModelError> {
        for record in &self.records {
            for field in record.fields() {
                if !self.columns.iter().any(|c| c == field) {
                    return Err(ModelError::unknown("dataset column", field.as_str()));
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<Record> for Dataset {
    fn from_iter<T: IntoIterator<Item = Record>>(iter: T) -> Self {
        let records: Vec<Record> = iter.into_iter().collect();
        let mut columns: Vec<FieldId> = Vec::new();
        for record in &records {
            for field in record.fields() {
                if !columns.iter().any(|c| c == field) {
                    columns.push(field.clone());
                }
            }
        }
        Dataset { columns, records }
    }
}

impl Extend<Record> for Dataset {
    fn extend<T: IntoIterator<Item = Record>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    #[test]
    fn value_conversions_and_accessors() {
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::interval(10.0, 20.0).as_f64(), Some(15.0));
        assert_eq!(Value::from("x").as_text(), Some("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert!(Value::Null.is_null());
        assert!(Value::from("x").as_f64().is_none());
    }

    #[test]
    fn interval_normalises_bounds_and_displays_like_the_paper() {
        assert_eq!(Value::interval(40.0, 30.0), Value::Interval { lo: 30.0, hi: 40.0 });
        assert_eq!(Value::interval(30.0, 40.0).to_string(), "30-40");
        assert_eq!(Value::Null.to_string(), "*");
    }

    #[test]
    fn covers_checks_interval_membership() {
        let band = Value::interval(30.0, 40.0);
        assert!(band.covers(&Value::Int(30)));
        assert!(band.covers(&Value::Int(35)));
        assert!(!band.covers(&Value::Int(40)));
        assert!(!band.covers(&Value::from("thirty")));
        assert!(Value::Int(5).covers(&Value::Int(5)));
        assert!(!Value::Int(5).covers(&Value::Int(6)));
    }

    #[test]
    fn closeness_uses_numeric_tolerance() {
        assert!(Value::Float(100.0).is_close_to(&Value::Float(104.9), 5.0));
        assert!(!Value::Float(100.0).is_close_to(&Value::Float(106.0), 5.0));
        assert!(Value::Int(100).is_close_to(&Value::Float(102.0), 5.0));
        assert!(Value::from("a").is_close_to(&Value::from("a"), 0.0));
        assert!(!Value::from("a").is_close_to(&Value::from("b"), 10.0));
    }

    #[test]
    fn record_projection_and_class_key() {
        let record = Record::new().with("Age", 30).with("Weight", 100.0).with("Name", "Ann");
        let projected = record.project([&age(), &weight()]);
        assert_eq!(projected.len(), 2);
        assert!(projected.get(&FieldId::new("Name")).is_none());

        let other = Record::new().with("Age", 30).with("Weight", 99.0);
        assert_eq!(record.class_key([&age()]), other.class_key([&age()]));
        assert_ne!(record.class_key([&age(), &weight()]), other.class_key([&age(), &weight()]));
    }

    #[test]
    fn record_get_or_null_and_remove() {
        let mut record = Record::new().with("Age", 30);
        assert_eq!(record.get_or_null(&weight()), Value::Null);
        assert_eq!(record.remove(&age()), Some(Value::Int(30)));
        assert!(record.is_empty());
    }

    #[test]
    fn dataset_columns_and_numeric_projection() {
        let mut data = Dataset::new([age(), weight()]);
        data.push(Record::new().with("Age", 30).with("Weight", 100.0));
        data.push(Record::new().with("Age", 25));
        assert_eq!(data.numeric_column(&weight()), vec![100.0]);
        assert_eq!(data.numeric_column(&age()), vec![30.0, 25.0]);
        assert_eq!(data.column(&age()).len(), 2);
        assert!(data.validate().is_ok());
    }

    #[test]
    fn dataset_validation_rejects_undeclared_columns() {
        let mut data = Dataset::new([age()]);
        data.push(Record::new().with("Height", 180));
        let err = data.validate().unwrap_err();
        assert!(matches!(err, ModelError::Unknown { .. }));
    }

    #[test]
    fn dataset_from_iterator_infers_columns() {
        let data: Dataset =
            [Record::new().with("Age", 1), Record::new().with("Weight", 2.0).with("Age", 3)]
                .into_iter()
                .collect();
        assert_eq!(data.columns().len(), 2);
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn display_of_record_is_sorted_by_field() {
        let record = Record::new().with("b", 2).with("a", 1);
        assert_eq!(record.to_string(), "{a: 1, b: 2}");
    }
}
