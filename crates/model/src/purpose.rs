//! Purposes of processing.
//!
//! Each data-flow arrow in the paper's modelling framework is labelled with a
//! *purpose* explaining why the flow exists (e.g. "book appointment",
//! "medical research"). Purposes also appear as optional labels on LTS
//! transitions.

use crate::error::ModelError;
use std::fmt;

/// The purpose for which a data flow or privacy action is performed.
///
/// A purpose must be a non-empty string; use [`Purpose::unspecified`] for
/// flows where the developer has not (yet) declared a purpose — modelling an
/// unspecified purpose explicitly lets validation flag it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Purpose(String);

impl Purpose {
    /// The placeholder purpose used when no purpose has been declared.
    pub const UNSPECIFIED: &'static str = "<unspecified>";

    /// Creates a purpose from a non-empty label.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] if `label` is empty or whitespace only.
    pub fn new(label: impl Into<String>) -> Result<Self, ModelError> {
        let label = label.into();
        if label.trim().is_empty() {
            return Err(ModelError::Empty { what: "purpose" });
        }
        Ok(Purpose(label))
    }

    /// Creates the explicit "unspecified" purpose.
    pub fn unspecified() -> Self {
        Purpose(Self::UNSPECIFIED.to_owned())
    }

    /// Returns `true` if this purpose is the unspecified placeholder.
    pub fn is_unspecified(&self) -> bool {
        self.0 == Self::UNSPECIFIED
    }

    /// The purpose label.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl TryFrom<&str> for Purpose {
    type Error = ModelError;

    fn try_from(value: &str) -> Result<Self, Self::Error> {
        Purpose::new(value)
    }
}

impl TryFrom<String> for Purpose {
    type Error = ModelError;

    fn try_from(value: String) -> Result<Self, Self::Error> {
        Purpose::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_empty_purposes_are_accepted() {
        let p = Purpose::new("book appointment").unwrap();
        assert_eq!(p.as_str(), "book appointment");
        assert_eq!(p.to_string(), "book appointment");
        assert!(!p.is_unspecified());
    }

    #[test]
    fn empty_or_whitespace_purposes_are_rejected() {
        assert!(Purpose::new("").is_err());
        assert!(Purpose::new("   ").is_err());
        assert!(Purpose::try_from("\t").is_err());
    }

    #[test]
    fn unspecified_placeholder_is_flagged() {
        let p = Purpose::unspecified();
        assert!(p.is_unspecified());
        assert_eq!(p.as_str(), Purpose::UNSPECIFIED);
    }

    #[test]
    fn try_from_string_works() {
        let p = Purpose::try_from(String::from("medical research")).unwrap();
        assert_eq!(p.as_str(), "medical research");
    }
}
