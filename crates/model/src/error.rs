//! Error types shared across the workspace's modelling crates.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating elements of the system
/// model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// An element with the same identifier has already been registered.
    Duplicate {
        /// The kind of element (e.g. `"actor"`).
        kind: &'static str,
        /// The duplicated identifier.
        id: String,
    },
    /// An element referenced by identifier does not exist in the catalog.
    Unknown {
        /// The kind of element (e.g. `"field"`).
        kind: &'static str,
        /// The missing identifier.
        id: String,
    },
    /// A numeric quantity was outside its permitted range.
    OutOfRange {
        /// A description of the quantity, e.g. `"sensitivity"`.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// An identifier or label was empty where a value is required.
    Empty {
        /// Description of the element that may not be empty.
        what: &'static str,
    },
    /// A free-form validation failure.
    Invalid {
        /// Human readable description of the problem.
        reason: String,
    },
}

impl ModelError {
    /// Creates a [`ModelError::Duplicate`].
    pub fn duplicate(kind: &'static str, id: impl Into<String>) -> Self {
        ModelError::Duplicate { kind, id: id.into() }
    }

    /// Creates a [`ModelError::Unknown`].
    pub fn unknown(kind: &'static str, id: impl Into<String>) -> Self {
        ModelError::Unknown { kind, id: id.into() }
    }

    /// Creates a [`ModelError::Invalid`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        ModelError::Invalid { reason: reason.into() }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Duplicate { kind, id } => {
                write!(f, "duplicate {kind} `{id}`")
            }
            ModelError::Unknown { kind, id } => {
                write!(f, "unknown {kind} `{id}`")
            }
            ModelError::OutOfRange { what, value, min, max } => {
                write!(f, "{what} {value} is outside the permitted range [{min}, {max}]")
            }
            ModelError::Empty { what } => write!(f, "{what} must not be empty"),
            ModelError::Invalid { reason } => f.write_str(reason),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = ModelError::duplicate("actor", "Doctor");
        assert_eq!(err.to_string(), "duplicate actor `Doctor`");

        let err = ModelError::unknown("field", "Weight");
        assert_eq!(err.to_string(), "unknown field `Weight`");

        let err = ModelError::OutOfRange { what: "sensitivity", value: 1.5, min: 0.0, max: 1.0 };
        assert_eq!(err.to_string(), "sensitivity 1.5 is outside the permitted range [0, 1]");

        let err = ModelError::Empty { what: "purpose" };
        assert_eq!(err.to_string(), "purpose must not be empty");

        let err = ModelError::invalid("flow order 3 used twice");
        assert_eq!(err.to_string(), "flow order 3 used twice");
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
