//! User sensitivities about personal-data fields.
//!
//! Section III-A of the paper assumes that the user declares, per data field
//! `d`, a sensitivity `σ(d)` — either as a category (low / medium / high) or
//! as a quantitative value in `[0, 1]`. The paper uses the quantitative value
//! throughout and so do we; [`SensitivityCategory`] provides the standard
//! mapping in both directions.
//!
//! The *relative* sensitivity `σ(d, a)` of a field with respect to an actor
//! is zero when the actor is *allowed* (participates in a service the user
//! consented to) and `σ(d)` otherwise; that function lives in the risk crate
//! because it also needs the consent information, but the raw profile is
//! defined here so the synthetic-data generator can produce it.

use crate::error::ModelError;
use crate::ids::FieldId;
use std::collections::BTreeMap;
use std::fmt;

/// A quantitative sensitivity in `[0, 1]`.
///
/// `0.0` means the user does not care at all about disclosure of the field;
/// `1.0` means maximally sensitive.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Sensitivity(f64);

impl Sensitivity {
    /// The zero sensitivity.
    pub const ZERO: Sensitivity = Sensitivity(0.0);
    /// The maximum sensitivity.
    pub const MAX: Sensitivity = Sensitivity(1.0);

    /// Creates a sensitivity, validating that the value lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfRange`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(ModelError::OutOfRange { what: "sensitivity", value, min: 0.0, max: 1.0 });
        }
        Ok(Sensitivity(value))
    }

    /// Creates a sensitivity, clamping the value into `[0, 1]` (NaN becomes
    /// `0.0`).
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            Sensitivity(0.0)
        } else {
            Sensitivity(value.clamp(0.0, 1.0))
        }
    }

    /// The underlying value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The category this sensitivity falls into.
    ///
    /// The thresholds follow the common three-point split of the unit
    /// interval: `[0, 1/3)` is low, `[1/3, 2/3)` is medium and `[2/3, 1]` is
    /// high.
    pub fn category(self) -> SensitivityCategory {
        SensitivityCategory::from_value(self.0)
    }

    /// Returns the larger of two sensitivities.
    pub fn max(self, other: Sensitivity) -> Sensitivity {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Returns `true` if the sensitivity is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<SensitivityCategory> for Sensitivity {
    fn from(category: SensitivityCategory) -> Self {
        category.representative()
    }
}

/// The categorical (low / medium / high) view of a sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SensitivityCategory {
    /// Sensitivity in `[0, 1/3)`.
    #[default]
    Low,
    /// Sensitivity in `[1/3, 2/3)`.
    Medium,
    /// Sensitivity in `[2/3, 1]`.
    High,
}

impl SensitivityCategory {
    /// Maps a quantitative sensitivity onto its category.
    pub fn from_value(value: f64) -> Self {
        if value >= 2.0 / 3.0 {
            SensitivityCategory::High
        } else if value >= 1.0 / 3.0 {
            SensitivityCategory::Medium
        } else {
            SensitivityCategory::Low
        }
    }

    /// A representative quantitative value for the category (the midpoint of
    /// its interval), used when a user only supplies categorical answers to
    /// the sensitivity questionnaire.
    pub fn representative(self) -> Sensitivity {
        match self {
            SensitivityCategory::Low => Sensitivity(1.0 / 6.0),
            SensitivityCategory::Medium => Sensitivity(0.5),
            SensitivityCategory::High => Sensitivity(5.0 / 6.0),
        }
    }
}

impl fmt::Display for SensitivityCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SensitivityCategory::Low => "Low",
            SensitivityCategory::Medium => "Medium",
            SensitivityCategory::High => "High",
        };
        f.write_str(name)
    }
}

/// A user's per-field sensitivities `σ(d)`.
///
/// Fields without an explicit entry take the profile's default sensitivity
/// (zero unless changed), matching the paper's assumption that only fields
/// the user has *particular* sensitivities about need to be declared.
///
/// # Example
///
/// ```
/// use privacy_model::{FieldId, Sensitivity, SensitivityCategory, SensitivityProfile};
///
/// # fn main() -> Result<(), privacy_model::ModelError> {
/// let mut profile = SensitivityProfile::new();
/// profile.set_category(FieldId::new("Diagnosis"), SensitivityCategory::High);
/// profile.set(FieldId::new("Appointment"), Sensitivity::new(0.2)?);
/// assert_eq!(
///     profile.sensitivity(&FieldId::new("Diagnosis")).category(),
///     SensitivityCategory::High
/// );
/// assert!(profile.sensitivity(&FieldId::new("Name")).is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensitivityProfile {
    default: Sensitivity,
    per_field: BTreeMap<FieldId, Sensitivity>,
}

impl SensitivityProfile {
    /// Creates an empty profile with a zero default sensitivity.
    pub fn new() -> Self {
        SensitivityProfile::default()
    }

    /// Creates an empty profile with the given default sensitivity.
    pub fn with_default(default: Sensitivity) -> Self {
        SensitivityProfile { default, per_field: BTreeMap::new() }
    }

    /// Sets the sensitivity for a field, returning the previous value if any.
    pub fn set(&mut self, field: FieldId, sensitivity: Sensitivity) -> Option<Sensitivity> {
        self.per_field.insert(field, sensitivity)
    }

    /// Sets the sensitivity for a field from a category.
    pub fn set_category(
        &mut self,
        field: FieldId,
        category: SensitivityCategory,
    ) -> Option<Sensitivity> {
        self.per_field.insert(field, category.representative())
    }

    /// The sensitivity of a field (falling back to the default).
    ///
    /// Pseudonymised fields (`f_anon`) that have no explicit entry inherit
    /// the sensitivity of their original field: the user cares about the
    /// value, not the column name under which it is released.
    pub fn sensitivity(&self, field: &FieldId) -> Sensitivity {
        if let Some(s) = self.per_field.get(field) {
            return *s;
        }
        if let Some(original) = field.original() {
            if let Some(s) = self.per_field.get(&original) {
                return *s;
            }
        }
        self.default
    }

    /// The default sensitivity used for fields with no explicit entry.
    pub fn default_sensitivity(&self) -> Sensitivity {
        self.default
    }

    /// The explicitly declared entries.
    pub fn iter(&self) -> impl Iterator<Item = (&FieldId, Sensitivity)> {
        self.per_field.iter().map(|(f, s)| (f, *s))
    }

    /// Number of explicitly declared entries.
    pub fn len(&self) -> usize {
        self.per_field.len()
    }

    /// Returns `true` if no explicit entries have been declared.
    pub fn is_empty(&self) -> bool {
        self.per_field.is_empty()
    }

    /// The maximum sensitivity across a set of fields.
    ///
    /// The paper asserts that *"a collection of data fields is only as
    /// sensitive as the most sensitive data field"*; this helper implements
    /// that aggregation.
    pub fn max_over<'a>(&self, fields: impl IntoIterator<Item = &'a FieldId>) -> Sensitivity {
        fields.into_iter().map(|f| self.sensitivity(f)).fold(Sensitivity::ZERO, Sensitivity::max)
    }
}

impl FromIterator<(FieldId, Sensitivity)> for SensitivityProfile {
    fn from_iter<T: IntoIterator<Item = (FieldId, Sensitivity)>>(iter: T) -> Self {
        SensitivityProfile { default: Sensitivity::ZERO, per_field: iter.into_iter().collect() }
    }
}

impl Extend<(FieldId, Sensitivity)> for SensitivityProfile {
    fn extend<T: IntoIterator<Item = (FieldId, Sensitivity)>>(&mut self, iter: T) {
        self.per_field.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_validates_range() {
        assert!(Sensitivity::new(0.0).is_ok());
        assert!(Sensitivity::new(1.0).is_ok());
        assert!(Sensitivity::new(0.5).is_ok());
        assert!(Sensitivity::new(-0.1).is_err());
        assert!(Sensitivity::new(1.1).is_err());
        assert!(Sensitivity::new(f64::NAN).is_err());
    }

    #[test]
    fn clamped_never_fails() {
        assert_eq!(Sensitivity::clamped(-3.0).value(), 0.0);
        assert_eq!(Sensitivity::clamped(3.0).value(), 1.0);
        assert_eq!(Sensitivity::clamped(f64::NAN).value(), 0.0);
        assert_eq!(Sensitivity::clamped(0.4).value(), 0.4);
    }

    #[test]
    fn categories_partition_the_unit_interval() {
        assert_eq!(SensitivityCategory::from_value(0.0), SensitivityCategory::Low);
        assert_eq!(SensitivityCategory::from_value(0.32), SensitivityCategory::Low);
        assert_eq!(SensitivityCategory::from_value(0.34), SensitivityCategory::Medium);
        assert_eq!(SensitivityCategory::from_value(0.65), SensitivityCategory::Medium);
        assert_eq!(SensitivityCategory::from_value(0.67), SensitivityCategory::High);
        assert_eq!(SensitivityCategory::from_value(1.0), SensitivityCategory::High);
    }

    #[test]
    fn representative_values_round_trip_through_category() {
        for category in
            [SensitivityCategory::Low, SensitivityCategory::Medium, SensitivityCategory::High]
        {
            assert_eq!(category.representative().category(), category);
        }
    }

    #[test]
    fn profile_falls_back_to_default() {
        let profile = SensitivityProfile::with_default(Sensitivity::clamped(0.25));
        assert_eq!(profile.sensitivity(&FieldId::new("Name")).value(), 0.25);
        assert!(profile.is_empty());
    }

    #[test]
    fn anonymised_fields_inherit_original_sensitivity() {
        let mut profile = SensitivityProfile::new();
        profile.set(FieldId::new("Weight"), Sensitivity::clamped(0.9));
        let anon = FieldId::new("Weight").anonymised();
        assert_eq!(profile.sensitivity(&anon).value(), 0.9);

        // But an explicit entry for the anonymised field takes precedence.
        profile.set(anon.clone(), Sensitivity::clamped(0.1));
        assert_eq!(profile.sensitivity(&anon).value(), 0.1);
    }

    #[test]
    fn max_over_returns_most_sensitive_field() {
        let mut profile = SensitivityProfile::new();
        profile.set(FieldId::new("Diagnosis"), Sensitivity::clamped(0.9));
        profile.set(FieldId::new("Appointment"), Sensitivity::clamped(0.2));
        let fields = [FieldId::new("Appointment"), FieldId::new("Diagnosis"), FieldId::new("Name")];
        assert_eq!(profile.max_over(fields.iter()).value(), 0.9);
        let none: Vec<FieldId> = Vec::new();
        assert!(profile.max_over(none.iter()).is_zero());
    }

    #[test]
    fn profile_collects_and_extends() {
        let mut profile: SensitivityProfile = [
            (FieldId::new("a"), Sensitivity::clamped(0.1)),
            (FieldId::new("b"), Sensitivity::clamped(0.2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(profile.len(), 2);
        profile.extend([(FieldId::new("c"), Sensitivity::clamped(0.3))]);
        assert_eq!(profile.len(), 3);
        assert_eq!(profile.sensitivity(&FieldId::new("c")).value(), 0.3);
    }

    #[test]
    fn sensitivity_display_is_three_decimals() {
        assert_eq!(Sensitivity::clamped(0.5).to_string(), "0.500");
        assert_eq!(SensitivityCategory::High.to_string(), "High");
    }
}
