//! Consent: which services a user has agreed to use.
//!
//! The paper's risk analysis assumes *"the user has explicitly agreed that
//! actors within the chosen services can handle their personal data for
//! particular purposes in the course of providing that service"*. Actors of
//! consented services are **allowed actors**; all other actors are
//! **non-allowed** and any access they have to the user's personal data is a
//! potential unwanted disclosure.

use crate::ids::ServiceId;
use std::collections::BTreeSet;
use std::fmt;

/// The set of services a user has agreed to use.
///
/// # Example
///
/// ```
/// use privacy_model::{Consent, ServiceId};
///
/// let consent = Consent::to([ServiceId::new("MedicalService")]);
/// assert!(consent.includes(&ServiceId::new("MedicalService")));
/// assert!(!consent.includes(&ServiceId::new("MedicalResearchService")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Consent {
    services: BTreeSet<ServiceId>,
}

impl Consent {
    /// Creates an empty consent (the user has agreed to nothing).
    pub fn none() -> Self {
        Consent::default()
    }

    /// Creates a consent covering the given services.
    pub fn to(services: impl IntoIterator<Item = ServiceId>) -> Self {
        Consent { services: services.into_iter().collect() }
    }

    /// Records agreement to an additional service. Returns `true` if the
    /// service was newly added.
    pub fn grant(&mut self, service: ServiceId) -> bool {
        self.services.insert(service)
    }

    /// Withdraws agreement to a service. Returns `true` if the service had
    /// been agreed to.
    pub fn withdraw(&mut self, service: &ServiceId) -> bool {
        self.services.remove(service)
    }

    /// Returns `true` if the user has agreed to the given service.
    pub fn includes(&self, service: &ServiceId) -> bool {
        self.services.contains(service)
    }

    /// The agreed services in sorted order.
    pub fn services(&self) -> impl Iterator<Item = &ServiceId> {
        self.services.iter()
    }

    /// Number of agreed services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Returns `true` if the user has agreed to no services.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

impl FromIterator<ServiceId> for Consent {
    fn from_iter<T: IntoIterator<Item = ServiceId>>(iter: T) -> Self {
        Consent::to(iter)
    }
}

impl Extend<ServiceId> for Consent {
    fn extend<T: IntoIterator<Item = ServiceId>>(&mut self, iter: T) {
        self.services.extend(iter);
    }
}

impl fmt::Display for Consent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.services.is_empty() {
            return f.write_str("consent{}");
        }
        f.write_str("consent{")?;
        for (i, service) in self.services.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{service}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_withdraw_round_trip() {
        let mut consent = Consent::none();
        assert!(consent.is_empty());
        assert!(consent.grant(ServiceId::new("MedicalService")));
        assert!(!consent.grant(ServiceId::new("MedicalService")));
        assert!(consent.includes(&ServiceId::new("MedicalService")));
        assert_eq!(consent.len(), 1);
        assert!(consent.withdraw(&ServiceId::new("MedicalService")));
        assert!(!consent.withdraw(&ServiceId::new("MedicalService")));
        assert!(consent.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut consent: Consent = [ServiceId::new("A"), ServiceId::new("B")].into_iter().collect();
        consent.extend([ServiceId::new("C")]);
        assert_eq!(consent.len(), 3);
        let names: Vec<_> = consent.services().map(ServiceId::as_str).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn display_lists_services_or_empty_braces() {
        assert_eq!(Consent::none().to_string(), "consent{}");
        let consent = Consent::to([ServiceId::new("B"), ServiceId::new("A")]);
        assert_eq!(consent.to_string(), "consent{A, B}");
    }
}
