//! Dense index interning for model identifiers.
//!
//! The LTS generation hot path cannot afford string-keyed map lookups for
//! every bit it sets, so identifiers ([`crate::ActorId`], [`crate::FieldId`],
//! [`crate::DatastoreId`], …) are resolved **once** up front to dense `u32`
//! indices and all subsequent work happens on integers. [`Interner`] is the
//! generic building block: insertion order assigns indices `0, 1, 2, …`,
//! duplicates collapse onto their first index, and the original values stay
//! addressable as a contiguous slice.

use std::collections::HashMap;
use std::hash::Hash;

/// An order-preserving deduplicating map from values to dense `u32` indices.
///
/// # Example
///
/// ```
/// use privacy_model::intern::Interner;
/// use privacy_model::ActorId;
///
/// let mut actors = Interner::new();
/// let doctor = actors.intern(ActorId::new("Doctor"));
/// let admin = actors.intern(ActorId::new("Administrator"));
/// assert_eq!((doctor, admin), (0, 1));
/// // Re-interning returns the existing index.
/// assert_eq!(actors.intern(ActorId::new("Doctor")), 0);
/// assert_eq!(actors.get(&ActorId::new("Administrator")), Some(1));
/// assert_eq!(actors.resolve(0), Some(&ActorId::new("Doctor")));
/// assert_eq!(actors.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner<T> {
    items: Vec<T>,
    index: HashMap<T, u32>,
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner { items: Vec::new(), index: HashMap::new() }
    }

    /// Creates an empty interner with capacity for `capacity` distinct values.
    pub fn with_capacity(capacity: usize) -> Self {
        Interner { items: Vec::with_capacity(capacity), index: HashMap::with_capacity(capacity) }
    }

    /// Interns a value, returning its dense index. A value already present
    /// keeps the index it was first assigned.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&existing) = self.index.get(&value) {
            return existing;
        }
        let id = u32::try_from(self.items.len()).expect("interner overflowed u32 indices");
        self.index.insert(value.clone(), id);
        self.items.push(value);
        id
    }

    /// The index of a value, if it has been interned.
    pub fn get(&self, value: &T) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// The value at a dense index, if in range.
    pub fn resolve(&self, id: u32) -> Option<&T> {
        self.items.get(id as usize)
    }

    /// All interned values, in index order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items.iter().enumerate().map(|(i, v)| (i as u32, v))
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for Interner<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut interner = Interner::new();
        for value in iter {
            interner.intern(value);
        }
        interner
    }
}

impl<T: Eq + Hash> PartialEq for Interner<T> {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl<T: Eq + Hash> Eq for Interner<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_dense_indices_in_insertion_order() {
        let mut interner = Interner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.intern("a"), 0);
        assert_eq!(interner.intern("b"), 1);
        assert_eq!(interner.intern("c"), 2);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.items(), &["a", "b", "c"]);
    }

    #[test]
    fn duplicates_keep_their_first_index() {
        let mut interner = Interner::new();
        interner.intern("x");
        interner.intern("y");
        assert_eq!(interner.intern("x"), 0);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn get_and_resolve_round_trip() {
        let interner: Interner<&str> = ["p", "q"].into_iter().collect();
        assert_eq!(interner.get(&"q"), Some(1));
        assert_eq!(interner.get(&"missing"), None);
        assert_eq!(interner.resolve(0), Some(&"p"));
        assert_eq!(interner.resolve(9), None);
        let pairs: Vec<(u32, &&str)> = interner.iter().collect();
        assert_eq!(pairs, vec![(0, &"p"), (1, &"q")]);
    }

    #[test]
    fn equality_compares_contents_in_order() {
        let a: Interner<u32> = [1, 2, 3].into_iter().collect();
        let b: Interner<u32> = [1, 2, 3, 2].into_iter().collect();
        let c: Interner<u32> = [2, 1, 3].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
