//! Strongly typed identifiers.
//!
//! Every element of the system model is referred to by a newtype identifier
//! wrapping a string. The newtypes prevent, at compile time, an actor
//! identifier being used where a field identifier is expected — a class of
//! bug that is easy to hit when generating large formal models from design
//! artefacts.

use std::borrow::Borrow;
use std::fmt;

/// Declares a string-backed identifier newtype with the common trait set.
macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(String);

        impl $name {
            /// Creates a new identifier from anything convertible to a string.
            pub fn new(id: impl Into<String>) -> Self {
                Self(id.into())
            }

            /// Returns the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Returns `true` if the identifier is the empty string.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes the identifier, returning the underlying `String`.
            pub fn into_string(self) -> String {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(value: &str) -> Self {
                Self(value.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(value: String) -> Self {
                Self(value)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }
    };
}

string_id! {
    /// Identifies an actor (an individual or a role type that can identify
    /// the user's personal data), e.g. `Doctor` or `Researcher`.
    ActorId
}

string_id! {
    /// Identifies a personal-data field, e.g. `Name` or `Diagnosis`.
    FieldId
}

string_id! {
    /// Identifies a datastore, e.g. `EHR` or `Appointments`.
    DatastoreId
}

string_id! {
    /// Identifies a data schema describing the fields held by a datastore.
    SchemaId
}

string_id! {
    /// Identifies a service offered by the system, e.g. `MedicalService`.
    ServiceId
}

string_id! {
    /// Identifies a user (data subject) of the system.
    UserId
}

string_id! {
    /// Identifies a role used by role-based access control.
    RoleId
}

impl FieldId {
    /// Suffix appended to a field identifier to name its pseudonymised
    /// counterpart (the paper writes `weight_anon` for the anonymised
    /// version of `weight`).
    pub const ANON_SUFFIX: &'static str = "_anon";

    /// Returns the identifier of the pseudonymised version of this field.
    ///
    /// ```
    /// use privacy_model::FieldId;
    /// assert_eq!(FieldId::new("Weight").anonymised().as_str(), "Weight_anon");
    /// ```
    pub fn anonymised(&self) -> FieldId {
        FieldId::new(format!("{}{}", self.0, Self::ANON_SUFFIX))
    }

    /// Returns `true` if this identifier names a pseudonymised field.
    pub fn is_anonymised(&self) -> bool {
        self.0.ends_with(Self::ANON_SUFFIX)
    }

    /// Returns the identifier of the original field if this identifier names
    /// a pseudonymised field, or `None` otherwise.
    ///
    /// ```
    /// use privacy_model::FieldId;
    /// let anon = FieldId::new("Weight").anonymised();
    /// assert_eq!(anon.original(), Some(FieldId::new("Weight")));
    /// assert_eq!(FieldId::new("Weight").original(), None);
    /// ```
    pub fn original(&self) -> Option<FieldId> {
        self.0.strip_suffix(Self::ANON_SUFFIX).map(|base| FieldId::new(base.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_round_trips() {
        let actor = ActorId::new("Doctor");
        assert_eq!(actor.to_string(), "Doctor");
        assert_eq!(actor.as_str(), "Doctor");
        assert_eq!(ActorId::from("Doctor"), actor);
        assert_eq!(ActorId::from(String::from("Doctor")), actor);
    }

    #[test]
    fn identifiers_are_ordered_and_hashable() {
        let mut set = BTreeSet::new();
        set.insert(FieldId::new("b"));
        set.insert(FieldId::new("a"));
        set.insert(FieldId::new("a"));
        let ordered: Vec<_> = set.iter().map(FieldId::as_str).collect();
        assert_eq!(ordered, vec!["a", "b"]);
    }

    #[test]
    fn empty_identifier_is_detectable() {
        assert!(ActorId::new("").is_empty());
        assert!(!ActorId::new("x").is_empty());
    }

    #[test]
    fn into_string_returns_inner_value() {
        assert_eq!(UserId::new("alice").into_string(), "alice");
    }

    #[test]
    fn anonymised_field_round_trip() {
        let weight = FieldId::new("Weight");
        let anon = weight.anonymised();
        assert!(anon.is_anonymised());
        assert!(!weight.is_anonymised());
        assert_eq!(anon.original(), Some(weight.clone()));
        assert_eq!(weight.original(), None);
    }

    #[test]
    fn borrow_allows_str_lookups() {
        use std::collections::HashMap;
        let mut map = HashMap::new();
        map.insert(DatastoreId::new("EHR"), 1usize);
        assert_eq!(map.get("EHR"), Some(&1));
    }

    #[test]
    fn default_is_empty() {
        assert!(ServiceId::default().is_empty());
        assert!(RoleId::default().is_empty());
        assert!(SchemaId::default().is_empty());
    }
}
