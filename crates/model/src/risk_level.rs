//! The low / medium / high vocabulary used for impact, likelihood and risk.
//!
//! Section III-A of the paper categorises both dimensions of risk (impact
//! and likelihood) into low / medium / high and combines them through a
//! service-specific table into a risk level. The three enums here share the
//! same three-point scale but are distinct types so that an impact category
//! cannot be passed where a likelihood category is expected.

use std::fmt;

macro_rules! three_point_scale {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub enum $name {
            /// The lowest category.
            #[default]
            Low,
            /// The middle category.
            Medium,
            /// The highest category.
            High,
        }

        impl $name {
            /// All categories in ascending order.
            pub const ALL: [$name; 3] = [$name::Low, $name::Medium, $name::High];

            /// Returns the category as an index (`Low = 0`, `Medium = 1`,
            /// `High = 2`), useful for building lookup tables.
            pub fn index(self) -> usize {
                match self {
                    $name::Low => 0,
                    $name::Medium => 1,
                    $name::High => 2,
                }
            }

            /// Builds a category from an index.
            ///
            /// Returns `None` if `index > 2`.
            pub fn from_index(index: usize) -> Option<Self> {
                match index {
                    0 => Some($name::Low),
                    1 => Some($name::Medium),
                    2 => Some($name::High),
                    _ => None,
                }
            }

            /// Returns the next category up, saturating at `High`.
            pub fn escalate(self) -> Self {
                Self::from_index((self.index() + 1).min(2)).expect("index <= 2")
            }

            /// Returns the next category down, saturating at `Low`.
            pub fn deescalate(self) -> Self {
                Self::from_index(self.index().saturating_sub(1)).expect("index <= 2")
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let name = match self {
                    $name::Low => "Low",
                    $name::Medium => "Medium",
                    $name::High => "High",
                };
                f.write_str(name)
            }
        }
    };
}

three_point_scale! {
    /// The severity (impact) category of a privacy risk.
    Severity
}

three_point_scale! {
    /// The likelihood category of a privacy risk.
    Likelihood
}

three_point_scale! {
    /// The combined risk level attached to an LTS transition or reported to
    /// the system designer.
    RiskLevel
}

impl RiskLevel {
    /// Returns `true` if this level is at least as severe as `other`.
    ///
    /// ```
    /// use privacy_model::RiskLevel;
    /// assert!(RiskLevel::High.at_least(RiskLevel::Medium));
    /// assert!(!RiskLevel::Low.at_least(RiskLevel::Medium));
    /// ```
    pub fn at_least(self, other: RiskLevel) -> bool {
        self.index() >= other.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_low_medium_high() {
        assert!(RiskLevel::Low < RiskLevel::Medium);
        assert!(RiskLevel::Medium < RiskLevel::High);
        assert!(Severity::Low < Severity::High);
        assert!(Likelihood::Medium > Likelihood::Low);
    }

    #[test]
    fn index_round_trips() {
        for level in RiskLevel::ALL {
            assert_eq!(RiskLevel::from_index(level.index()), Some(level));
        }
        assert_eq!(RiskLevel::from_index(3), None);
        assert_eq!(Severity::from_index(17), None);
    }

    #[test]
    fn escalate_and_deescalate_saturate() {
        assert_eq!(RiskLevel::Low.escalate(), RiskLevel::Medium);
        assert_eq!(RiskLevel::High.escalate(), RiskLevel::High);
        assert_eq!(RiskLevel::Medium.deescalate(), RiskLevel::Low);
        assert_eq!(RiskLevel::Low.deescalate(), RiskLevel::Low);
    }

    #[test]
    fn at_least_is_reflexive_and_monotone() {
        assert!(RiskLevel::Medium.at_least(RiskLevel::Medium));
        assert!(RiskLevel::High.at_least(RiskLevel::Low));
        assert!(!RiskLevel::Low.at_least(RiskLevel::High));
    }

    #[test]
    fn default_is_low() {
        assert_eq!(RiskLevel::default(), RiskLevel::Low);
        assert_eq!(Severity::default(), Severity::Low);
        assert_eq!(Likelihood::default(), Likelihood::Low);
    }

    #[test]
    fn display_uses_capitalised_names() {
        assert_eq!(RiskLevel::Medium.to_string(), "Medium");
        assert_eq!(Severity::High.to_string(), "High");
        assert_eq!(Likelihood::Low.to_string(), "Low");
    }
}
