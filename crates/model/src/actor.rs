//! Actors: the individuals and role types that can act on personal data.
//!
//! The paper defines an actor as *"an individual or role type which can
//! identify the user's personal data"*. The data subject (the user the
//! personal data is about) is also modelled as an actor so data-flow arrows
//! can originate from them (`collect` actions).

use crate::ids::ActorId;
use std::fmt;

/// The kind of an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ActorKind {
    /// The data subject: the user whose personal data the model is about.
    DataSubject,
    /// A specific human individual (e.g. a named employee).
    Individual,
    /// A role type (e.g. `Doctor`, `Receptionist`) that one or more humans
    /// may hold; role-based access control grants permissions at this level.
    Role,
    /// An automated system component acting on data (e.g. a backup job).
    System,
}

impl fmt::Display for ActorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActorKind::DataSubject => "data subject",
            ActorKind::Individual => "individual",
            ActorKind::Role => "role",
            ActorKind::System => "system",
        };
        f.write_str(name)
    }
}

/// An actor that can perform privacy-relevant actions on personal data.
///
/// # Example
///
/// ```
/// use privacy_model::{Actor, ActorKind};
///
/// let doctor = Actor::role("Doctor").with_description("treats patients");
/// assert_eq!(doctor.kind(), ActorKind::Role);
/// assert_eq!(doctor.description(), "treats patients");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Actor {
    id: ActorId,
    kind: ActorKind,
    description: String,
}

impl Actor {
    /// Creates an actor of the given kind.
    pub fn new(id: impl Into<ActorId>, kind: ActorKind) -> Self {
        Actor { id: id.into(), kind, description: String::new() }
    }

    /// Creates a role-type actor (the most common case in the paper).
    pub fn role(id: impl Into<ActorId>) -> Self {
        Actor::new(id, ActorKind::Role)
    }

    /// Creates an individual actor.
    pub fn individual(id: impl Into<ActorId>) -> Self {
        Actor::new(id, ActorKind::Individual)
    }

    /// Creates the data-subject actor.
    pub fn data_subject(id: impl Into<ActorId>) -> Self {
        Actor::new(id, ActorKind::DataSubject)
    }

    /// Creates a system actor.
    pub fn system(id: impl Into<ActorId>) -> Self {
        Actor::new(id, ActorKind::System)
    }

    /// Attaches a human readable description and returns the actor.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The actor's identifier.
    pub fn id(&self) -> &ActorId {
        &self.id
    }

    /// The actor's kind.
    pub fn kind(&self) -> ActorKind {
        self.kind
    }

    /// The actor's human readable description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Returns `true` if the actor is the data subject.
    pub fn is_data_subject(&self) -> bool {
        self.kind == ActorKind::DataSubject
    }
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_expected_kind() {
        assert_eq!(Actor::role("Doctor").kind(), ActorKind::Role);
        assert_eq!(Actor::individual("Alice").kind(), ActorKind::Individual);
        assert_eq!(Actor::data_subject("Patient").kind(), ActorKind::DataSubject);
        assert_eq!(Actor::system("BackupJob").kind(), ActorKind::System);
    }

    #[test]
    fn data_subject_detection() {
        assert!(Actor::data_subject("Patient").is_data_subject());
        assert!(!Actor::role("Doctor").is_data_subject());
    }

    #[test]
    fn description_round_trip() {
        let actor = Actor::role("Nurse").with_description("administers care");
        assert_eq!(actor.description(), "administers care");
        assert_eq!(Actor::role("Nurse").description(), "");
    }

    #[test]
    fn display_includes_id_and_kind() {
        assert_eq!(Actor::role("Doctor").to_string(), "Doctor (role)");
        assert_eq!(Actor::data_subject("Patient").to_string(), "Patient (data subject)");
    }

    #[test]
    fn actors_are_ordered_by_id_then_kind() {
        let a = Actor::role("A");
        let b = Actor::role("B");
        assert!(a < b);
    }
}
