//! The doctors'-surgery case study of the paper (Fig. 1, Case Studies A and
//! B, Table I).
//!
//! The system has five actors (Receptionist, Doctor, Nurse, Administrator,
//! Researcher), the six personal-data fields listed in Section II-B (Name,
//! Date of Birth, Appointment, Medical Issues, Diagnosis, Treatment
//! Information) plus the three physical-attribute fields of Table I (Age,
//! Height, Weight) and their pseudonymised counterparts, three datastores
//! (Appointments, EHR, Anonymised EHR) and two services (the Medical Service
//! and the Medical Research Service).

use crate::system::PrivacySystem;
use privacy_access::{FieldScope, Grant, Permission};
use privacy_dataflow::DiagramBuilder;
use privacy_model::{
    Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, ModelError, SensitivityCategory,
    ServiceDecl, ServiceId, UserProfile,
};

/// Field identifiers of the case study.
pub mod fields {
    use privacy_model::FieldId;

    /// The patient's name.
    pub fn name() -> FieldId {
        FieldId::new("Name")
    }

    /// The patient's date of birth.
    pub fn date_of_birth() -> FieldId {
        FieldId::new("Date of Birth")
    }

    /// The appointment details.
    pub fn appointment() -> FieldId {
        FieldId::new("Appointment")
    }

    /// The medical issues reported by the patient.
    pub fn medical_issues() -> FieldId {
        FieldId::new("Medical Issues")
    }

    /// The diagnosis.
    pub fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    /// The treatment information.
    pub fn treatment() -> FieldId {
        FieldId::new("Treatment Information")
    }

    /// The patient's age (quasi-identifier, Table I).
    pub fn age() -> FieldId {
        FieldId::new("Age")
    }

    /// The patient's height (quasi-identifier, Table I).
    pub fn height() -> FieldId {
        FieldId::new("Height")
    }

    /// The patient's weight (sensitive value, Table I).
    pub fn weight() -> FieldId {
        FieldId::new("Weight")
    }
}

/// Actor identifiers of the case study.
pub mod actors {
    use privacy_model::ActorId;

    /// The receptionist booking appointments.
    pub fn receptionist() -> ActorId {
        ActorId::new("Receptionist")
    }

    /// The doctor treating the patient.
    pub fn doctor() -> ActorId {
        ActorId::new("Doctor")
    }

    /// The nurse administering treatment.
    pub fn nurse() -> ActorId {
        ActorId::new("Nurse")
    }

    /// The administrator maintaining the datastores and preparing research
    /// releases.
    pub fn administrator() -> ActorId {
        ActorId::new("Administrator")
    }

    /// The researcher working on the anonymised release.
    pub fn researcher() -> ActorId {
        ActorId::new("Researcher")
    }
}

/// The identifier of the Medical Service.
pub fn medical_service() -> ServiceId {
    ServiceId::new("MedicalService")
}

/// The identifier of the Medical Research Service.
pub fn research_service() -> ServiceId {
    ServiceId::new("MedicalResearchService")
}

/// Builds the full healthcare [`PrivacySystem`] of Fig. 1.
///
/// # Errors
///
/// Returns a [`ModelError`] if the fixture itself is inconsistent (which the
/// tests guard against).
pub fn healthcare() -> Result<PrivacySystem, ModelError> {
    let mut builder = PrivacySystem::builder();

    // --- Catalog: actors -------------------------------------------------
    {
        let catalog = builder.catalog_mut();
        catalog.add_actor(Actor::role("Receptionist").with_description("books appointments"))?;
        catalog.add_actor(Actor::role("Doctor").with_description("treats patients"))?;
        catalog.add_actor(Actor::role("Nurse").with_description("administers treatment"))?;
        catalog.add_actor(
            Actor::role("Administrator").with_description("maintains datastores and releases"),
        )?;
        catalog.add_actor(Actor::role("Researcher").with_description("analyses released data"))?;

        // --- Catalog: fields ---------------------------------------------
        catalog.add_field(DataField::identifier("Name"))?;
        catalog.add_field(DataField::quasi_identifier("Date of Birth"))?;
        catalog.add_field(DataField::other("Appointment"))?;
        catalog.add_field(DataField::sensitive("Medical Issues"))?;
        catalog.add_field_with_anonymised(DataField::sensitive("Diagnosis"))?;
        catalog.add_field(DataField::sensitive("Treatment Information"))?;
        catalog.add_field_with_anonymised(DataField::quasi_identifier("Age"))?;
        catalog.add_field_with_anonymised(DataField::quasi_identifier("Height"))?;
        catalog.add_field_with_anonymised(DataField::sensitive("Weight"))?;

        // --- Catalog: schemas and datastores -------------------------------
        catalog.add_schema(DataSchema::new(
            "AppointmentsSchema",
            [fields::name(), fields::date_of_birth(), fields::appointment()],
        ))?;
        catalog.add_schema(DataSchema::new(
            "EHRSchema",
            [
                fields::name(),
                fields::date_of_birth(),
                fields::medical_issues(),
                fields::diagnosis(),
                fields::treatment(),
                fields::age(),
                fields::height(),
                fields::weight(),
            ],
        ))?;
        catalog.add_schema(DataSchema::new(
            "AnonEHRSchema",
            [
                fields::diagnosis().anonymised(),
                fields::age().anonymised(),
                fields::height().anonymised(),
                fields::weight().anonymised(),
            ],
        ))?;
        catalog.add_datastore(DatastoreDecl::new("Appointments", "AppointmentsSchema"))?;
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema"))?;
        catalog.add_datastore(DatastoreDecl::anonymised("AnonEHR", "AnonEHRSchema"))?;

        // --- Catalog: services --------------------------------------------
        catalog.add_service(
            ServiceDecl::new(
                "MedicalService",
                [actors::receptionist(), actors::doctor(), actors::nurse()],
            )
            .with_description("appointment booking, consultation and treatment"),
        )?;
        catalog.add_service(
            ServiceDecl::new(
                "MedicalResearchService",
                [actors::administrator(), actors::researcher()],
            )
            .with_description("anonymised release of health records for research"),
        )?;
    }

    // --- Access policy ----------------------------------------------------
    {
        let policy = builder.policy_mut();
        let acl = policy.acl_mut();
        acl.grant(Grant::read_write_all("Receptionist", "Appointments"));
        acl.grant(Grant::read_write_all("Doctor", "Appointments"));
        acl.grant(Grant::read_write_all("Doctor", "EHR"));
        acl.grant(Grant::new(
            "Nurse",
            "EHR",
            FieldScope::fields([fields::treatment(), fields::name()]),
            [Permission::Read],
        ));
        // The administrator maintains the EHR (the paper's unwanted
        // disclosure) and produces the anonymised release.
        acl.grant(Grant::read_all("Administrator", "EHR"));
        acl.grant(Grant::read_write_all("Administrator", "AnonEHR"));
        acl.grant(Grant::read_all("Researcher", "AnonEHR"));
    }

    // --- Data-flow diagrams (Fig. 1) ---------------------------------------
    let medical = DiagramBuilder::new("MedicalService")
        .collect("Receptionist", [fields::name(), fields::date_of_birth()], "book appointment", 1)?
        .create(
            "Receptionist",
            "Appointments",
            [fields::name(), fields::date_of_birth(), fields::appointment()],
            "book appointment",
            2,
        )?
        .read(
            "Doctor",
            "Appointments",
            [fields::name(), fields::appointment()],
            "prepare consultation",
            3,
        )?
        .collect("Doctor", [fields::medical_issues()], "consultation", 4)?
        .create(
            "Doctor",
            "EHR",
            [fields::name(), fields::medical_issues(), fields::diagnosis(), fields::treatment()],
            "record diagnosis and treatment",
            5,
        )?
        .read("Nurse", "EHR", [fields::name(), fields::treatment()], "administer treatment", 6)?
        .build();

    let research = DiagramBuilder::new("MedicalResearchService")
        .read(
            "Administrator",
            "EHR",
            [fields::diagnosis(), fields::age(), fields::height(), fields::weight()],
            "prepare research dataset",
            1,
        )?
        .anonymise(
            "Administrator",
            "AnonEHR",
            [
                fields::diagnosis().anonymised(),
                fields::age().anonymised(),
                fields::height().anonymised(),
                fields::weight().anonymised(),
            ],
            "2-anonymise the dataset",
            2,
        )?
        .read(
            "Researcher",
            "AnonEHR",
            [
                fields::diagnosis().anonymised(),
                fields::age().anonymised(),
                fields::height().anonymised(),
                fields::weight().anonymised(),
            ],
            "medical research",
            3,
        )?
        .build();

    builder.add_diagram(medical)?;
    builder.add_diagram(research)?;
    builder.build()
}

/// The Case Study A user: consents to the Medical Service only and is highly
/// sensitive about the Diagnosis field.
pub fn case_a_user() -> UserProfile {
    UserProfile::new("case-a-user")
        .consents_to(medical_service())
        .with_category_sensitivity(fields::diagnosis(), SensitivityCategory::High)
}

/// The quasi-identifier combinations of Table I in column order:
/// Height only, Age only, Age+Height.
pub fn table1_visible_sets() -> Vec<Vec<FieldId>> {
    vec![vec![fields::height()], vec![fields::age()], vec![fields::age(), fields::height()]]
}

/// The adversary of Case Study B.
pub fn case_b_adversary() -> ActorId {
    actors::researcher()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::Permission;

    #[test]
    fn healthcare_system_is_consistent() {
        let system = healthcare().unwrap();
        let report = system.validate().unwrap();
        assert!(report.is_ok(), "{report}");
        assert_eq!(system.catalog().actor_count(), 5);
        assert_eq!(system.catalog().datastore_count(), 3);
        assert_eq!(system.catalog().service_count(), 2);
        assert_eq!(system.dataflows().len(), 2);
        assert_eq!(system.dataflows().flow_count(), 9);
    }

    #[test]
    fn state_variable_count_scales_with_the_paper_formula() {
        // The paper counts 60 variables for 5 actors x 6 fields; our catalog
        // additionally registers the Table I physical attributes and the
        // pseudonymised counterparts, so the count is 2 x 5 x |fields|.
        let system = healthcare().unwrap();
        let fields = system.catalog().field_count();
        assert_eq!(system.catalog().state_variable_count(), 2 * 5 * fields);
        assert!(fields >= 6);
    }

    #[test]
    fn access_policy_matches_the_narrative() {
        let system = healthcare().unwrap();
        let policy = system.policy();
        let ehr = privacy_model::DatastoreId::new("EHR");
        assert!(policy.can(&actors::doctor(), Permission::Read, &ehr, &fields::diagnosis()));
        assert!(policy.can(&actors::administrator(), Permission::Read, &ehr, &fields::diagnosis()));
        assert!(!policy.can(&actors::nurse(), Permission::Read, &ehr, &fields::diagnosis()));
        assert!(!policy.can(&actors::researcher(), Permission::Read, &ehr, &fields::diagnosis()));
        let anon = privacy_model::DatastoreId::new("AnonEHR");
        assert!(policy.can(
            &actors::researcher(),
            Permission::Read,
            &anon,
            &fields::weight().anonymised()
        ));
    }

    #[test]
    fn case_a_user_profile_matches_the_paper() {
        let user = case_a_user();
        assert!(user.consent().includes(&medical_service()));
        assert!(!user.consent().includes(&research_service()));
        assert_eq!(
            user.sensitivities().sensitivity(&fields::diagnosis()).category(),
            SensitivityCategory::High
        );
    }

    #[test]
    fn lts_generation_succeeds_for_both_services() {
        let system = healthcare().unwrap();
        let full = system.generate_lts().unwrap();
        assert!(full.state_count() > 1);
        assert!(full.transition_count() >= system.dataflows().flow_count());

        let medical_only = system
            .generate_lts_with(&privacy_lts::GeneratorConfig::for_service("MedicalService"))
            .unwrap();
        assert!(medical_only.state_count() <= full.state_count());
        assert_eq!(medical_only.transition_count(), 6);
    }

    #[test]
    fn table1_visible_sets_are_in_paper_column_order() {
        let sets = table1_visible_sets();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0], vec![fields::height()]);
        assert_eq!(sets[1], vec![fields::age()]);
        assert_eq!(sets[2], vec![fields::age(), fields::height()]);
        assert_eq!(case_b_adversary().as_str(), "Researcher");
    }
}
