//! The privacy system model: everything the developer declares.

use privacy_access::AccessPolicy;
use privacy_dataflow::validate::validate_system;
use privacy_dataflow::{DataFlowDiagram, SystemDataFlows, ValidationReport};
use privacy_lts::{generate_lts, GeneratorConfig, Lts};
use privacy_model::{Catalog, ModelError};
use std::fmt;

/// The complete design-time description of a privacy-aware system: the
/// catalog (vocabulary), the per-service data-flow diagrams and the
/// access-control policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacySystem {
    catalog: Catalog,
    dataflows: SystemDataFlows,
    policy: AccessPolicy,
}

impl PrivacySystem {
    /// Starts a builder.
    pub fn builder() -> PrivacySystemBuilder {
        PrivacySystemBuilder::default()
    }

    /// Creates a system from its parts.
    pub fn new(catalog: Catalog, dataflows: SystemDataFlows, policy: AccessPolicy) -> Self {
        PrivacySystem { catalog, dataflows, policy }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The data-flow diagrams.
    pub fn dataflows(&self) -> &SystemDataFlows {
        &self.dataflows
    }

    /// The access policy.
    pub fn policy(&self) -> &AccessPolicy {
        &self.policy
    }

    /// Returns a copy of the system with a different access policy — the
    /// designer's loop of Case Study A (change the policy, re-analyse).
    pub fn with_policy(&self, policy: AccessPolicy) -> PrivacySystem {
        PrivacySystem { catalog: self.catalog.clone(), dataflows: self.dataflows.clone(), policy }
    }

    /// Validates the catalog's referential integrity and the data-flow
    /// diagrams against the catalog.
    ///
    /// # Errors
    ///
    /// Returns the catalog's [`ModelError`] if its references dangle; the
    /// data-flow issues are returned in the [`ValidationReport`] (which can
    /// contain errors and warnings).
    pub fn validate(&self) -> Result<ValidationReport, ModelError> {
        self.catalog.validate()?;
        Ok(validate_system(&self.dataflows, &self.catalog))
    }

    /// Generates the formal privacy LTS with the default generator
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (unknown service selection, state bound
    /// exceeded).
    pub fn generate_lts(&self) -> Result<Lts, ModelError> {
        self.generate_lts_with(&GeneratorConfig::default())
    }

    /// Generates the formal privacy LTS with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (unknown service selection, state bound
    /// exceeded).
    pub fn generate_lts_with(&self, config: &GeneratorConfig) -> Result<Lts, ModelError> {
        generate_lts(&self.catalog, &self.dataflows, &self.policy, config)
    }
}

impl fmt::Display for PrivacySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "privacy system: {}; {}", self.catalog, self.dataflows)
    }
}

/// Builder for [`PrivacySystem`].
#[derive(Debug, Clone, Default)]
pub struct PrivacySystemBuilder {
    catalog: Catalog,
    dataflows: SystemDataFlows,
    policy: AccessPolicy,
}

impl PrivacySystemBuilder {
    /// Mutable access to the catalog being built.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Mutable access to the access policy being built.
    pub fn policy_mut(&mut self) -> &mut AccessPolicy {
        &mut self.policy
    }

    /// Adds a per-service data-flow diagram.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if the service already has a
    /// diagram.
    pub fn add_diagram(&mut self, diagram: DataFlowDiagram) -> Result<&mut Self, ModelError> {
        self.dataflows.add_diagram(diagram)?;
        Ok(self)
    }

    /// Finishes the system, validating the catalog.
    ///
    /// # Errors
    ///
    /// Returns the catalog's [`ModelError`] if its references dangle.
    pub fn build(self) -> Result<PrivacySystem, ModelError> {
        self.catalog.validate()?;
        Ok(PrivacySystem { catalog: self.catalog, dataflows: self.dataflows, policy: self.policy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{Grant, PolicyDelta};
    use privacy_dataflow::DiagramBuilder;
    use privacy_model::{
        Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, ServiceDecl,
    };

    fn build_small_system() -> PrivacySystem {
        let mut builder = PrivacySystem::builder();
        builder.catalog_mut().add_actor(Actor::role("Doctor")).unwrap();
        builder.catalog_mut().add_field(DataField::sensitive("Diagnosis")).unwrap();
        builder
            .catalog_mut()
            .add_schema(DataSchema::new("S", [FieldId::new("Diagnosis")]))
            .unwrap();
        builder.catalog_mut().add_datastore(DatastoreDecl::new("EHR", "S")).unwrap();
        builder
            .catalog_mut()
            .add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")]))
            .unwrap();
        builder.policy_mut().acl_mut().grant(Grant::read_write_all("Doctor", "EHR"));
        builder
            .add_diagram(
                DiagramBuilder::new("MedicalService")
                    .collect("Doctor", ["Diagnosis"], "consult", 1)
                    .unwrap()
                    .create("Doctor", "EHR", ["Diagnosis"], "record", 2)
                    .unwrap()
                    .build(),
            )
            .unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn builder_assembles_a_consistent_system() {
        let system = build_small_system();
        assert_eq!(system.catalog().actor_count(), 1);
        assert_eq!(system.dataflows().len(), 1);
        let report = system.validate().unwrap();
        assert!(report.is_ok(), "{report}");
        assert!(system.to_string().contains("privacy system"));
    }

    #[test]
    fn build_rejects_dangling_catalog_references() {
        let mut builder = PrivacySystem::builder();
        builder.catalog_mut().add_schema(DataSchema::new("S", [FieldId::new("Ghost")])).unwrap();
        assert!(builder.build().is_err());
    }

    #[test]
    fn lts_generation_and_policy_replacement() {
        let system = build_small_system();
        let lts = system.generate_lts().unwrap();
        assert_eq!(lts.transition_count(), 2);

        // Removing the doctor's grant removes the exposure recorded on
        // create.
        let revised = system.with_policy(system.policy().with_applied(&PolicyDelta::new().revoke(
            "Doctor",
            privacy_access::Permission::Read,
            "EHR",
        )));
        let lts2 = revised.generate_lts().unwrap();
        let space = lts2.space().clone();
        assert!(!lts2.states().any(|(_, s)| s.could(
            &space,
            &ActorId::new("Doctor"),
            &FieldId::new("Diagnosis")
        )));
        // The original system is unchanged.
        let space1 = lts.space().clone();
        assert!(lts.states().any(|(_, s)| s.could(
            &space1,
            &ActorId::new("Doctor"),
            &FieldId::new("Diagnosis")
        )));
    }

    #[test]
    fn duplicate_diagrams_are_rejected_by_the_builder() {
        let mut builder = PrivacySystem::builder();
        builder.catalog_mut().add_actor(Actor::role("Doctor")).unwrap();
        builder.catalog_mut().add_field(DataField::sensitive("Diagnosis")).unwrap();
        let diagram =
            DiagramBuilder::new("S").collect("Doctor", ["Diagnosis"], "p", 1).unwrap().build();
        builder.add_diagram(diagram.clone()).unwrap();
        assert!(builder.add_diagram(diagram).is_err());
    }
}
