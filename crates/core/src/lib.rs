//! # privacy-core
//!
//! The model-driven privacy-engineering pipeline — the primary contribution
//! of *"Identifying Privacy Risks in Distributed Data Services: A
//! Model-Driven Approach"* (Grace et al., ICDCS 2018) — assembled from the
//! workspace's substrate crates:
//!
//! 1. the developer describes the system as a [`PrivacySystem`]: a catalog of
//!    actors / fields / schemas / datastores / services, per-service
//!    data-flow diagrams and an access-control policy;
//! 2. [`PrivacySystem::generate_lts`] produces the formal LTS privacy model
//!    (Section II-B);
//! 3. [`Pipeline`] runs the automated risk analyses (Section III) for a given
//!    user, annotating the LTS and producing a combined
//!    [`privacy_risk::RiskReport`];
//! 4. the designer reacts — e.g. applies a
//!    [`privacy_access::PolicyDelta`] — and re-runs the pipeline until the
//!    reported risks are acceptable.
//!
//! The [`casestudy`] module contains the doctors'-surgery system of Fig. 1
//! and the Table I records, used by the examples, integration tests and the
//! benchmark harness.
//!
//! # Example
//!
//! ```
//! use privacy_core::casestudy;
//! use privacy_core::Pipeline;
//! use privacy_model::RiskLevel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = casestudy::healthcare()?;
//! let pipeline = Pipeline::new(&system);
//! let outcome = pipeline.analyse_user(&casestudy::case_a_user())?;
//! assert_eq!(outcome.report.overall_level(), RiskLevel::Medium);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod pipeline;
pub mod system;

pub use pipeline::{Pipeline, PipelineOutcome, PopulationOutcome};
pub use system::{PrivacySystem, PrivacySystemBuilder};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::casestudy;
    pub use crate::pipeline::{Pipeline, PipelineOutcome, PopulationOutcome};
    pub use crate::system::{PrivacySystem, PrivacySystemBuilder};
}
