//! The end-to-end analysis pipeline.

use crate::system::PrivacySystem;
use privacy_anonymity::ValueRiskPolicy;
use privacy_lts::{GeneratorConfig, Lts, LtsIndex, LtsQuery};
use privacy_model::{ActorId, Dataset, FieldId, ModelError, UserProfile};
use privacy_risk::{
    DisclosureAnalysis, DisclosureReport, LikelihoodModel, PseudonymAnalysis, RiskMatrix,
    RiskReport,
};
use std::fmt;
use std::sync::Arc;

/// The result of running the pipeline for one user: the annotated LTS and the
/// combined risk report.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The generated LTS with risk annotations and risk-transitions applied.
    pub lts: Lts,
    /// The combined risk report.
    pub report: RiskReport,
}

impl fmt::Display for PipelineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.lts.stats())?;
        write!(f, "{}", self.report)
    }
}

/// The result of assessing a whole user population over **one** generated
/// LTS and **one** shared analysis index: the read-only batch counterpart of
/// [`Pipeline::analyse_user`]. The LTS is not mutated, so the index remains
/// a faithful snapshot — downstream consumers (compliance checks, queries,
/// the runtime monitor) can keep probing it via
/// [`PopulationOutcome::query`]. The index is reference-counted so the
/// operation-time layer can hold on to it beyond the outcome's lifetime:
/// [`PopulationOutcome::shared_index`] is what a fresh *or resumed*
/// `privacy_runtime::IndexedMonitor` is constructed over, and
/// [`PopulationOutcome::index_fingerprint`] is the value a persisted monitor
/// snapshot is validated against on restart.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    /// The generated (unannotated) LTS.
    pub lts: Lts,
    /// The columnar analysis index built once over [`PopulationOutcome::lts`],
    /// shared with any monitors constructed (or resumed) over it.
    pub index: Arc<LtsIndex>,
    /// One read-only disclosure report per user, in input order.
    pub reports: Vec<DisclosureReport>,
}

impl PopulationOutcome {
    /// An index-backed query over the generated LTS.
    pub fn query(&self) -> LtsQuery<'_> {
        LtsQuery::with_index(&self.lts, &self.index)
    }

    /// A shared handle on the analysis index — the design-time build a
    /// streaming monitor probes, and the one a monitor snapshot taken
    /// against it can be resumed over after a restart.
    pub fn shared_index(&self) -> Arc<LtsIndex> {
        Arc::clone(&self.index)
    }

    /// The fingerprint of the shared index (see
    /// [`LtsIndex::fingerprint`]): persisted monitor snapshots record it,
    /// and resuming validates it, so state accumulated against one model
    /// generation can never be silently reinterpreted under another.
    pub fn index_fingerprint(&self) -> u64 {
        self.index.fingerprint()
    }
}

impl fmt::Display for PopulationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.lts.stats())?;
        write!(f, "population risk: {} users assessed over one shared index", self.reports.len())
    }
}

/// The model-driven analysis pipeline over one [`PrivacySystem`].
#[derive(Debug, Clone)]
pub struct Pipeline<'a> {
    system: &'a PrivacySystem,
    generator: GeneratorConfig,
    matrix: RiskMatrix,
    likelihood: LikelihoodModel,
}

impl<'a> Pipeline<'a> {
    /// Creates a pipeline with default generator configuration, risk matrix
    /// and likelihood model.
    pub fn new(system: &'a PrivacySystem) -> Self {
        Pipeline {
            system,
            generator: GeneratorConfig::default(),
            matrix: RiskMatrix::standard(),
            likelihood: LikelihoodModel::standard(),
        }
    }

    /// Builder-style: overrides the generator configuration.
    pub fn with_generator(mut self, config: GeneratorConfig) -> Self {
        self.generator = config;
        self
    }

    /// Builder-style: overrides the risk matrix.
    pub fn with_matrix(mut self, matrix: RiskMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Builder-style: overrides the likelihood model.
    pub fn with_likelihood(mut self, likelihood: LikelihoodModel) -> Self {
        self.likelihood = likelihood;
        self
    }

    /// The system under analysis.
    pub fn system(&self) -> &PrivacySystem {
        self.system
    }

    /// Generates the LTS and runs the unwanted-disclosure analysis for one
    /// user (Case Study A).
    ///
    /// Unless the generator configuration already restricts the services,
    /// the LTS is generated for the services the user consented to — the
    /// paper assumes that *"the disclose action will only occur during the
    /// course of a service, and hence if a user has not agreed to use that
    /// service, the disclose action will not be engaged"*; accesses outside
    /// those services are what the likelihood scenarios and the added
    /// potential-read risk transitions account for.
    ///
    /// # Errors
    ///
    /// Propagates LTS generation errors.
    pub fn analyse_user(&self, user: &UserProfile) -> Result<PipelineOutcome, ModelError> {
        let mut config = self.generator.clone();
        if config.services.is_none() {
            let consented: std::collections::BTreeSet<_> = user
                .consent()
                .services()
                .filter(|s| self.system.dataflows().diagram(s).is_some())
                .cloned()
                .collect();
            config.services = Some(consented);
        }
        let mut lts = self.system.generate_lts_with(&config)?;
        let disclosure = DisclosureAnalysis::new(self.system.catalog(), self.system.policy())
            .with_matrix(self.matrix.clone())
            .with_likelihood(self.likelihood.clone())
            .analyse(&mut lts, user);
        Ok(PipelineOutcome { lts, report: RiskReport::new().with_disclosure(disclosure) })
    }

    /// Assesses a whole user population over one generated LTS and one
    /// shared analysis index, fanning the users out over `threads` worker
    /// threads (`None` = one per CPU). Reports are read-only (no risk
    /// transitions are added) and identical — per user, in order — to the
    /// findings of [`Pipeline::analyse_user`] minus the annotations; the
    /// returned [`PopulationOutcome`] keeps the LTS and index together so
    /// downstream checks reuse the same snapshot instead of rebuilding it.
    ///
    /// Unless the generator configuration already restricts the services,
    /// the LTS covers every modelled service: a population-wide model must
    /// serve users with differing consent, so per-user service restriction
    /// happens through each user's allowed-actor set rather than the state
    /// space.
    ///
    /// # Errors
    ///
    /// Propagates LTS generation errors.
    pub fn analyse_population(
        &self,
        users: &[UserProfile],
        threads: Option<usize>,
    ) -> Result<PopulationOutcome, ModelError> {
        let lts = self.system.generate_lts_with(&self.generator)?;
        let index = Arc::new(LtsIndex::build(&lts));
        let reports = DisclosureAnalysis::new(self.system.catalog(), self.system.policy())
            .with_matrix(self.matrix.clone())
            .with_likelihood(self.likelihood.clone())
            .analyse_users_batch(&index, users, threads);
        Ok(PopulationOutcome { lts, index, reports })
    }

    /// Generates the LTS and runs both analyses: unwanted disclosure for the
    /// user and pseudonymisation value risk for the given adversary over the
    /// released dataset (Case Study B / Table I).
    ///
    /// # Errors
    ///
    /// Propagates LTS generation and value-risk errors.
    #[allow(clippy::too_many_arguments)]
    pub fn analyse_user_and_release(
        &self,
        user: &UserProfile,
        adversary: &ActorId,
        release: &Dataset,
        value_policy: ValueRiskPolicy,
        visible_sets: &[Vec<FieldId>],
        violation_threshold: Option<f64>,
    ) -> Result<PipelineOutcome, ModelError> {
        let mut lts = self.system.generate_lts_with(&self.generator)?;
        let disclosure = DisclosureAnalysis::new(self.system.catalog(), self.system.policy())
            .with_matrix(self.matrix.clone())
            .with_likelihood(self.likelihood.clone())
            .analyse(&mut lts, user);

        let mut pseudonym_analysis =
            PseudonymAnalysis::new(self.system.catalog(), self.system.policy(), value_policy);
        if let Some(threshold) = violation_threshold {
            pseudonym_analysis = pseudonym_analysis.with_violation_threshold(threshold);
        }
        // The disclosure stage's index describes the pre-annotation LTS, so
        // it cannot be handed on: the pseudonymisation analysis must scan
        // the by-then-mutated reachable set (its indexed entry point is for
        // snapshots that are still current).
        let pseudonym = pseudonym_analysis.analyse(&mut lts, adversary, release, visible_sets)?;

        Ok(PipelineOutcome {
            lts,
            report: RiskReport::new().with_disclosure(disclosure).with_pseudonym(pseudonym),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy;
    use privacy_access::{Permission, PolicyDelta};
    use privacy_lts::GeneratorConfig;
    use privacy_model::{RiskLevel, ServiceId};
    use privacy_synth::table1_release;

    #[test]
    fn case_study_a_risk_is_medium_then_low_after_the_policy_change() {
        let system = casestudy::healthcare().unwrap();
        let pipeline = Pipeline::new(&system);
        let outcome = pipeline.analyse_user(&casestudy::case_a_user()).unwrap();
        let disclosure = outcome.report.disclosure().unwrap();
        assert_eq!(
            disclosure
                .risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()),
            RiskLevel::Medium
        );
        assert!(outcome.report.requires_action());

        // Apply the paper's remedy: revoke the administrator's EHR read.
        let revised = system.with_policy(system.policy().with_applied(&PolicyDelta::new().revoke(
            "Administrator",
            Permission::Read,
            "EHR",
        )));
        let pipeline = Pipeline::new(&revised);
        let outcome = pipeline.analyse_user(&casestudy::case_a_user()).unwrap();
        let disclosure = outcome.report.disclosure().unwrap();
        assert_eq!(
            disclosure
                .risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()),
            RiskLevel::Low
        );
        assert!(!outcome.report.requires_action());
    }

    #[test]
    fn population_assessment_shares_one_index_and_matches_per_user_findings() {
        let system = casestudy::healthcare().unwrap();
        let pipeline = Pipeline::new(&system);
        let users = vec![
            casestudy::case_a_user(),
            casestudy::case_a_user().consents_to(ServiceId::new("MedicalResearchService")),
        ];
        let outcome = pipeline.analyse_population(&users, Some(2)).unwrap();
        assert_eq!(outcome.reports.len(), 2);
        // The index-backed query answers from the same shared snapshot.
        assert!(outcome.query().index().is_some());
        assert!(outcome.query().can_actor_identify(
            &casestudy::actors::administrator(),
            &casestudy::fields::diagnosis()
        ));
        // Case A: the administrator/diagnosis finding is Medium; a user who
        // consented to everything has no findings at all.
        assert_eq!(
            outcome.reports[0]
                .risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()),
            RiskLevel::Medium
        );
        assert!(outcome.reports[1].is_empty());
        // Identical for every thread count, and the LTS is unannotated.
        assert_eq!(outcome.lts.stats().risk_transitions, 0);
        let sequential = pipeline.analyse_population(&users, Some(1)).unwrap();
        assert_eq!(outcome.reports, sequential.reports);
        assert!(outcome.to_string().contains("2 users assessed"));
    }

    #[test]
    fn case_study_b_reproduces_the_violation_series() {
        let system = casestudy::healthcare().unwrap();
        let pipeline = Pipeline::new(&system)
            .with_generator(GeneratorConfig::default().with_max_states(500_000));
        let outcome = pipeline
            .analyse_user_and_release(
                &casestudy::case_a_user(),
                &casestudy::case_b_adversary(),
                &table1_release(),
                ValueRiskPolicy::weight_within_5kg_at_90_percent(),
                &casestudy::table1_visible_sets(),
                Some(0.5),
            )
            .unwrap();
        let pseudonym = outcome.report.pseudonym().unwrap();
        assert_eq!(pseudonym.violation_series(), vec![0, 2, 4]);
        assert!(pseudonym.is_unacceptable());
        assert_eq!(outcome.report.overall_level(), RiskLevel::High);
        // The annotated LTS carries dotted risk transitions for the
        // researcher (Fig. 4).
        assert!(outcome.lts.stats().risk_transitions > 0);
        assert!(outcome.to_string().contains("privacy risk report"));
    }
}
