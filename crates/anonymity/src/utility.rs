//! Utility metrics for pseudonymised releases.
//!
//! Section III-B: *"The resulting pseudonymised dataset with values removed
//! can be tested for utility, by comparing statistical qualities like means
//! and variances between the original data and the pseudonymised data. If a
//! technique requires too much data removal and utility is shown to be likely
//! adversely affected, the technique used would clearly be not appropriate."*

use privacy_model::{Dataset, FieldId};
use std::fmt;

/// Comparison of a numeric column before and after pseudonymisation.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityReport {
    field: FieldId,
    original_mean: f64,
    released_mean: f64,
    original_variance: f64,
    released_variance: f64,
    original_count: usize,
    released_count: usize,
}

impl UtilityReport {
    /// The compared field.
    pub fn field(&self) -> &FieldId {
        &self.field
    }

    /// Mean of the original column.
    pub fn original_mean(&self) -> f64 {
        self.original_mean
    }

    /// Mean of the released column (intervals contribute their midpoints).
    pub fn released_mean(&self) -> f64 {
        self.released_mean
    }

    /// Variance (population) of the original column.
    pub fn original_variance(&self) -> f64 {
        self.original_variance
    }

    /// Variance (population) of the released column.
    pub fn released_variance(&self) -> f64 {
        self.released_variance
    }

    /// Number of usable values in the original column.
    pub fn original_count(&self) -> usize {
        self.original_count
    }

    /// Number of usable values in the released column.
    pub fn released_count(&self) -> usize {
        self.released_count
    }

    /// Absolute difference of the means.
    pub fn mean_shift(&self) -> f64 {
        (self.original_mean - self.released_mean).abs()
    }

    /// Relative difference of the means (0 when the original mean is 0).
    pub fn relative_mean_shift(&self) -> f64 {
        if self.original_mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.mean_shift() / self.original_mean.abs()
        }
    }

    /// Fraction of values lost to suppression or non-numeric generalisation.
    pub fn loss_rate(&self) -> f64 {
        if self.original_count == 0 {
            0.0
        } else {
            1.0 - (self.released_count as f64 / self.original_count as f64)
        }
    }

    /// A simple acceptability test: the release is acceptable if the relative
    /// mean shift and the loss rate both stay below the given bounds.
    pub fn is_acceptable(&self, max_relative_mean_shift: f64, max_loss_rate: f64) -> bool {
        self.relative_mean_shift() <= max_relative_mean_shift && self.loss_rate() <= max_loss_rate
    }
}

impl fmt::Display for UtilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "utility of {}: mean {:.2} -> {:.2}, variance {:.2} -> {:.2}, {} -> {} values",
            self.field,
            self.original_mean,
            self.released_mean,
            self.original_variance,
            self.released_variance,
            self.original_count,
            self.released_count
        )
    }
}

/// Compares one numeric column of the original dataset against the release.
pub fn utility_report(original: &Dataset, released: &Dataset, field: &FieldId) -> UtilityReport {
    let original_values = original.numeric_column(field);
    let released_values = released.numeric_column(field);
    UtilityReport {
        field: field.clone(),
        original_mean: mean(&original_values),
        released_mean: mean(&released_values),
        original_variance: variance(&original_values),
        released_variance: variance(&released_values),
        original_count: original_values.len(),
        released_count: released_values.len(),
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{Record, Value};

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn original() -> Dataset {
        Dataset::from_records(
            [age()],
            [20, 30, 40, 50].into_iter().map(|a| Record::new().with("Age", a as i64)),
        )
    }

    #[test]
    fn identical_release_has_zero_shift_and_loss() {
        let report = utility_report(&original(), &original(), &age());
        assert_eq!(report.mean_shift(), 0.0);
        assert_eq!(report.relative_mean_shift(), 0.0);
        assert_eq!(report.loss_rate(), 0.0);
        assert_eq!(report.original_mean(), 35.0);
        assert_eq!(report.original_variance(), 125.0);
        assert!(report.is_acceptable(0.01, 0.0));
    }

    #[test]
    fn generalised_release_shifts_means_via_midpoints() {
        let released = Dataset::from_records(
            [age()],
            [(20.0, 30.0), (30.0, 40.0), (40.0, 50.0), (50.0, 60.0)]
                .into_iter()
                .map(|(lo, hi)| Record::new().with("Age", Value::interval(lo, hi))),
        );
        let report = utility_report(&original(), &released, &age());
        // Midpoints are 25, 35, 45, 55 -> mean 40 vs 35.
        assert_eq!(report.released_mean(), 40.0);
        assert_eq!(report.mean_shift(), 5.0);
        assert!((report.relative_mean_shift() - 5.0 / 35.0).abs() < 1e-12);
        assert_eq!(report.loss_rate(), 0.0);
        assert!(!report.is_acceptable(0.05, 0.0));
        assert!(report.is_acceptable(0.2, 0.0));
    }

    #[test]
    fn suppression_shows_up_as_loss() {
        let released = Dataset::from_records(
            [age()],
            [
                Record::new().with("Age", 20i64),
                Record::new().with("Age", Value::Null),
                Record::new().with("Age", Value::Null),
                Record::new().with("Age", 50i64),
            ],
        );
        let report = utility_report(&original(), &released, &age());
        assert_eq!(report.released_count(), 2);
        assert_eq!(report.loss_rate(), 0.5);
        assert!(!report.is_acceptable(1.0, 0.25));
        assert!(report.to_string().contains("4 -> 2 values"));
    }

    #[test]
    fn empty_columns_do_not_divide_by_zero() {
        let empty = Dataset::new([age()]);
        let report = utility_report(&empty, &empty, &age());
        assert_eq!(report.original_mean(), 0.0);
        assert_eq!(report.loss_rate(), 0.0);
        assert_eq!(report.relative_mean_shift(), 0.0);
    }
}
