//! # privacy-anonymity
//!
//! Pseudonymisation / anonymisation substrate for the model-driven privacy
//! framework (Section III-B of Grace et al., ICDCS 2018).
//!
//! The paper's pseudonymisation-risk analysis assumes the system discloses
//! k-anonymised versions of sensitive datasets and asks whether an adversary
//! who can see the pseudonymised quasi-identifiers can still match a
//! sensitive *value* to an individual. This crate provides everything that
//! analysis needs:
//!
//! * [`hierarchy`] — generalisation hierarchies for numeric (interval bands)
//!   and categorical values;
//! * [`kanon`] — a k-anonymiser (global recoding over the hierarchies, with
//!   record suppression as a fallback) and equivalence-class computation;
//! * [`ldiversity`] — distinct l-diversity checking, the mitigation the paper
//!   cites for the residual value risk of k-anonymity;
//! * [`tcloseness`] — t-closeness checking (ordered-EMD for numeric values,
//!   total-variation for categorical values), guarding against the skewness
//!   attacks that l-diversity still permits;
//! * [`pseudonym`] — deterministic tokenisation of direct identifiers;
//! * [`value_risk`](mod@value_risk) — the paper's per-record value-risk score
//!   `risk(r, f) = frequency(f) / size(s)` (Table I) and violation counting
//!   against a designer policy such as *"weight must not be predictable to
//!   ±5 kg with ≥90 % confidence"*;
//! * [`utility`] — utility metrics (mean / variance preservation,
//!   generalisation information loss, suppression rate) used to judge
//!   whether a pseudonymisation technique removes too much information.
//!
//! # Example
//!
//! ```
//! use privacy_anonymity::prelude::*;
//! use privacy_model::{Dataset, FieldId, Record};
//!
//! // Two quasi-identifiers, one sensitive value.
//! let data = Dataset::from_records(
//!     [FieldId::new("Age"), FieldId::new("Weight")],
//!     [
//!         Record::new().with("Age", 34).with("Weight", 100.0),
//!         Record::new().with("Age", 36).with("Weight", 102.0),
//!     ],
//! );
//! let mut anonymiser = KAnonymizer::new(2)
//!     .with_hierarchy(FieldId::new("Age"), Hierarchy::numeric([10.0, 20.0, 50.0]));
//! let result = anonymiser.anonymise(&data, &[FieldId::new("Age")]).unwrap();
//! assert!(result.is_k_anonymous());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod kanon;
pub mod ldiversity;
pub mod pseudonym;
pub mod tcloseness;
pub mod utility;
pub mod value_risk;

pub use hierarchy::Hierarchy;
pub use kanon::{AnonymisationResult, EquivalenceClass, KAnonymizer};
pub use ldiversity::{l_diversity_of, satisfies_l_diversity};
pub use pseudonym::Pseudonymizer;
pub use tcloseness::{satisfies_t_closeness, t_closeness_of};
pub use utility::{utility_report, UtilityReport};
pub use value_risk::{value_risk, RecordRisk, ValueRiskPolicy, ValueRiskReport};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::hierarchy::Hierarchy;
    pub use crate::kanon::{AnonymisationResult, EquivalenceClass, KAnonymizer};
    pub use crate::ldiversity::{l_diversity_of, satisfies_l_diversity};
    pub use crate::pseudonym::Pseudonymizer;
    pub use crate::tcloseness::{satisfies_t_closeness, t_closeness_of};
    pub use crate::utility::{utility_report, UtilityReport};
    pub use crate::value_risk::{value_risk, RecordRisk, ValueRiskPolicy, ValueRiskReport};
}
