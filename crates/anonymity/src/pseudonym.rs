//! Deterministic pseudonymisation of direct identifiers.
//!
//! Before a dataset is released for research, direct identifiers (names,
//! patient numbers) are replaced by opaque tokens. The tokeniser is
//! deterministic — the same input always maps to the same token — so that
//! longitudinal analyses remain possible, which is also precisely why
//! pseudonymised data is still personal data and needs the risk analysis of
//! this workspace.

use privacy_model::{Dataset, FieldId, Record, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A deterministic pseudonymiser based on a keyed FNV-1a hash.
///
/// This is *not* a cryptographic primitive; it stands in for the keyed
/// tokenisation service a production deployment would use, while keeping the
/// workspace dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pseudonymizer {
    key: u64,
    prefix: String,
}

impl Pseudonymizer {
    /// Creates a pseudonymiser with the given key and token prefix.
    pub fn new(key: u64, prefix: impl Into<String>) -> Self {
        Pseudonymizer { key, prefix: prefix.into() }
    }

    /// Creates a pseudonymiser with the default `"pid-"` prefix.
    pub fn with_key(key: u64) -> Self {
        Pseudonymizer::new(key, "pid-")
    }

    /// The token for one value.
    pub fn token(&self, value: &Value) -> String {
        let text = value.to_string();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ self.key;
        for byte in text.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{}{:016x}", self.prefix, hash)
    }

    /// Pseudonymises one record: every listed field is replaced by its token
    /// and renamed to the `_anon` counterpart; other fields pass through
    /// unchanged.
    pub fn pseudonymise_record(&self, record: &Record, fields: &BTreeSet<FieldId>) -> Record {
        let mut result = Record::new();
        for (field, value) in record.iter() {
            if fields.contains(field) {
                result.set(field.anonymised(), Value::Text(self.token(value)));
            } else {
                result.set(field.clone(), value.clone());
            }
        }
        result
    }

    /// Pseudonymises a whole dataset.
    pub fn pseudonymise(&self, dataset: &Dataset, fields: &BTreeSet<FieldId>) -> Dataset {
        let columns: Vec<FieldId> = dataset
            .columns()
            .iter()
            .map(|c| if fields.contains(c) { c.anonymised() } else { c.clone() })
            .collect();
        let mut result = Dataset::new(columns);
        for record in dataset.iter() {
            result.push(self.pseudonymise_record(record, fields));
        }
        result
    }
}

impl fmt::Display for Pseudonymizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pseudonymiser (prefix `{}`)", self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name() -> FieldId {
        FieldId::new("Name")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    #[test]
    fn tokens_are_deterministic_and_key_dependent() {
        let a = Pseudonymizer::with_key(1);
        let b = Pseudonymizer::with_key(2);
        let value = Value::from("Alice");
        assert_eq!(a.token(&value), a.token(&value));
        assert_ne!(a.token(&value), b.token(&value));
        assert_ne!(a.token(&Value::from("Alice")), a.token(&Value::from("Bob")));
        assert!(a.token(&value).starts_with("pid-"));
    }

    #[test]
    fn record_pseudonymisation_renames_and_tokenises_selected_fields() {
        let pseudonymiser = Pseudonymizer::with_key(42);
        let record = Record::new().with("Name", "Alice").with("Weight", 70.0);
        let fields: BTreeSet<FieldId> = [name()].into_iter().collect();
        let result = pseudonymiser.pseudonymise_record(&record, &fields);

        assert!(result.get(&name()).is_none());
        let token = result.get(&FieldId::new("Name_anon")).unwrap();
        assert!(matches!(token, Value::Text(t) if t.starts_with("pid-")));
        assert_eq!(result.get(&weight()), Some(&Value::Float(70.0)));
    }

    #[test]
    fn dataset_pseudonymisation_keeps_linkability() {
        let pseudonymiser = Pseudonymizer::new(7, "tok-");
        let data = Dataset::from_records(
            [name(), weight()],
            [
                Record::new().with("Name", "Alice").with("Weight", 70.0),
                Record::new().with("Name", "Bob").with("Weight", 80.0),
                Record::new().with("Name", "Alice").with("Weight", 71.0),
            ],
        );
        let fields: BTreeSet<FieldId> = [name()].into_iter().collect();
        let result = pseudonymiser.pseudonymise(&data, &fields);

        assert_eq!(result.len(), 3);
        assert!(result.columns().contains(&FieldId::new("Name_anon")));
        assert!(!result.columns().contains(&name()));

        let token = |i: usize| result.get(i).unwrap().get(&FieldId::new("Name_anon")).cloned();
        // Alice's two records share a token (linkable), Bob's differs.
        assert_eq!(token(0), token(2));
        assert_ne!(token(0), token(1));
    }

    #[test]
    fn display_mentions_the_prefix() {
        assert_eq!(Pseudonymizer::new(0, "t-").to_string(), "pseudonymiser (prefix `t-`)");
    }
}
