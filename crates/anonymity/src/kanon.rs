//! k-anonymisation by global recoding over generalisation hierarchies.
//!
//! A release is k-anonymous with respect to a set of quasi-identifiers if
//! every record is indistinguishable from at least `k − 1` other records when
//! only the quasi-identifiers are visible. The anonymiser here performs
//! **global recoding**: it searches for the lowest generalisation level per
//! quasi-identifier (in lockstep, lowest total level first) at which every
//! equivalence class reaches size `k`, suppressing the records of undersized
//! classes if no level suffices.

use crate::hierarchy::Hierarchy;
use privacy_model::{Dataset, FieldId, ModelError, Record, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One equivalence class: the records (by index) that share the same visible
/// quasi-identifier values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceClass {
    key: String,
    members: Vec<usize>,
}

impl EquivalenceClass {
    /// The class key (the joined quasi-identifier values).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The indices (into the dataset) of the member records.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The class size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the class has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Partitions a dataset into equivalence classes induced by the given
/// (visible) fields.
pub fn equivalence_classes(dataset: &Dataset, visible: &[FieldId]) -> Vec<EquivalenceClass> {
    let mut classes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (index, record) in dataset.iter().enumerate() {
        let key = record.class_key(visible.iter());
        classes.entry(key).or_default().push(index);
    }
    classes.into_iter().map(|(key, members)| EquivalenceClass { key, members }).collect()
}

/// The outcome of anonymising a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymisationResult {
    data: Dataset,
    quasi_identifiers: Vec<FieldId>,
    k: usize,
    levels: BTreeMap<FieldId, usize>,
    suppressed: Vec<usize>,
}

impl AnonymisationResult {
    /// The anonymised dataset (suppressed records removed).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The quasi-identifiers the anonymisation was performed over.
    pub fn quasi_identifiers(&self) -> &[FieldId] {
        &self.quasi_identifiers
    }

    /// The `k` that was requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The generalisation level chosen for each quasi-identifier.
    pub fn levels(&self) -> &BTreeMap<FieldId, usize> {
        &self.levels
    }

    /// The indices (into the original dataset) of suppressed records.
    pub fn suppressed(&self) -> &[usize] {
        &self.suppressed
    }

    /// The fraction of records suppressed.
    pub fn suppression_rate(&self) -> f64 {
        let total = self.data.len() + self.suppressed.len();
        if total == 0 {
            0.0
        } else {
            self.suppressed.len() as f64 / total as f64
        }
    }

    /// The equivalence classes of the anonymised data.
    pub fn classes(&self) -> Vec<EquivalenceClass> {
        equivalence_classes(&self.data, &self.quasi_identifiers)
    }

    /// Returns `true` if every remaining equivalence class has at least `k`
    /// members.
    pub fn is_k_anonymous(&self) -> bool {
        self.data.is_empty() || self.classes().iter().all(|c| c.len() >= self.k)
    }

    /// The size of the smallest remaining equivalence class (0 for an empty
    /// release).
    pub fn min_class_size(&self) -> usize {
        self.classes().iter().map(EquivalenceClass::len).min().unwrap_or(0)
    }
}

impl fmt::Display for AnonymisationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-anonymised release: {} records, {} suppressed, levels {:?}",
            self.k,
            self.data.len(),
            self.suppressed.len(),
            self.levels
        )
    }
}

/// A k-anonymiser configured with per-field generalisation hierarchies.
#[derive(Debug, Clone, PartialEq)]
pub struct KAnonymizer {
    k: usize,
    hierarchies: BTreeMap<FieldId, Hierarchy>,
    allow_suppression: bool,
}

impl KAnonymizer {
    /// Creates an anonymiser for the given `k` (must be at least 1).
    pub fn new(k: usize) -> Self {
        KAnonymizer { k: k.max(1), hierarchies: BTreeMap::new(), allow_suppression: true }
    }

    /// Builder-style: registers the hierarchy of a quasi-identifier.
    pub fn with_hierarchy(mut self, field: FieldId, hierarchy: Hierarchy) -> Self {
        self.hierarchies.insert(field, hierarchy);
        self
    }

    /// Builder-style: forbid record suppression (anonymisation fails instead).
    pub fn without_suppression(mut self) -> Self {
        self.allow_suppression = false;
        self
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Anonymises a dataset over the given quasi-identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] if a quasi-identifier has no
    /// registered hierarchy, [`ModelError::Invalid`] if a hierarchy is
    /// malformed or if `k` cannot be reached without suppression while
    /// suppression is disabled.
    pub fn anonymise(
        &self,
        dataset: &Dataset,
        quasi_identifiers: &[FieldId],
    ) -> Result<AnonymisationResult, ModelError> {
        for field in quasi_identifiers {
            let hierarchy = self
                .hierarchies
                .get(field)
                .ok_or_else(|| ModelError::unknown("generalisation hierarchy", field.as_str()))?;
            hierarchy.validate()?;
        }

        // Enumerate level combinations in order of increasing total level so
        // the least general (most useful) solution is found first.
        let max_levels: Vec<usize> =
            quasi_identifiers.iter().map(|f| self.hierarchies[f].max_level()).collect();
        let mut best: Option<(Vec<usize>, Dataset, Vec<usize>)> = None;
        let total_max: usize = max_levels.iter().sum();

        'outer: for total in 0..=total_max {
            for levels in combinations_with_sum(&max_levels, total) {
                let generalised = self.apply_levels(dataset, quasi_identifiers, &levels);
                let classes = equivalence_classes(&generalised, quasi_identifiers);
                let undersized: Vec<usize> = classes
                    .iter()
                    .filter(|c| c.len() < self.k)
                    .flat_map(|c| c.members().iter().copied())
                    .collect();
                if undersized.is_empty() {
                    best = Some((levels, generalised, Vec::new()));
                    break 'outer;
                }
                // Remember the first (least generalised) solution needing
                // suppression in case nothing better turns up.
                if best.is_none() && self.allow_suppression {
                    let kept = remove_records(&generalised, &undersized);
                    best = Some((levels, kept, undersized));
                }
            }
        }

        let (levels, data, suppressed) = best.ok_or_else(|| {
            ModelError::invalid(format!("cannot reach {}-anonymity without suppression", self.k))
        })?;
        if !suppressed.is_empty() && !self.allow_suppression {
            return Err(ModelError::invalid(format!(
                "cannot reach {}-anonymity without suppression",
                self.k
            )));
        }

        Ok(AnonymisationResult {
            data,
            quasi_identifiers: quasi_identifiers.to_vec(),
            k: self.k,
            levels: quasi_identifiers.iter().cloned().zip(levels).collect(),
            suppressed,
        })
    }

    fn apply_levels(
        &self,
        dataset: &Dataset,
        quasi_identifiers: &[FieldId],
        levels: &[usize],
    ) -> Dataset {
        let mut result = Dataset::new(dataset.columns().to_vec());
        for record in dataset.iter() {
            let mut generalised = record.clone();
            for (field, level) in quasi_identifiers.iter().zip(levels) {
                let value = record.get(field).cloned().unwrap_or(Value::Null);
                generalised.set(field.clone(), self.hierarchies[field].generalise(&value, *level));
            }
            result.push(generalised);
        }
        result
    }
}

fn remove_records(dataset: &Dataset, indices: &[usize]) -> Dataset {
    let mut kept = Dataset::new(dataset.columns().to_vec());
    for (index, record) in dataset.iter().enumerate() {
        if !indices.contains(&index) {
            kept.push(record.clone());
        }
    }
    kept
}

/// Enumerates every level vector bounded by `max_levels` whose components sum
/// to `total`.
fn combinations_with_sum(max_levels: &[usize], total: usize) -> Vec<Vec<usize>> {
    fn recurse(
        max_levels: &[usize],
        total: usize,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if max_levels.is_empty() {
            if total == 0 {
                out.push(prefix.clone());
            }
            return;
        }
        let cap = max_levels[0].min(total);
        for level in 0..=cap {
            prefix.push(level);
            recurse(&max_levels[1..], total - level, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    recurse(max_levels, total, &mut Vec::new(), &mut out);
    out
}

/// Convenience: anonymise and also copy the sensitive fields through
/// unchanged, renaming every column `f` to its pseudonymised counterpart
/// `f_anon` so the release can be loaded into an anonymised datastore whose
/// schema uses the `_anon` field identifiers.
pub fn release_with_anon_columns(result: &AnonymisationResult) -> Dataset {
    let columns: Vec<FieldId> = result.data().columns().iter().map(FieldId::anonymised).collect();
    let mut release = Dataset::new(columns);
    for record in result.data().iter() {
        let mut renamed = Record::new();
        for (field, value) in record.iter() {
            renamed.set(field.anonymised(), value.clone());
        }
        release.push(renamed);
    }
    release
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn height() -> FieldId {
        FieldId::new("Height")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    /// Raw values consistent with the six records of Table I before
    /// generalisation.
    fn raw_records() -> Dataset {
        let rows = [
            (34, 185, 100.0),
            (36, 190, 102.0),
            (25, 182, 110.0),
            (28, 188, 111.0),
            (22, 170, 80.0),
            (27, 165, 110.0),
        ];
        Dataset::from_records(
            [age(), height(), weight()],
            rows.iter().map(|(a, h, w)| {
                Record::new().with("Age", *a as i64).with("Height", *h as i64).with("Weight", *w)
            }),
        )
    }

    fn anonymiser() -> KAnonymizer {
        KAnonymizer::new(2)
            .with_hierarchy(age(), Hierarchy::numeric([10.0, 20.0, 40.0]))
            .with_hierarchy(height(), Hierarchy::numeric([20.0, 40.0]))
    }

    #[test]
    fn equivalence_classes_partition_by_visible_fields() {
        let data = raw_records();
        let classes = equivalence_classes(&data, &[age()]);
        // Every raw age is distinct, so six singleton classes.
        assert_eq!(classes.len(), 6);
        assert!(classes.iter().all(|c| c.len() == 1 && !c.is_empty()));

        let classes = equivalence_classes(&data, &[]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 6);
    }

    #[test]
    fn two_anonymisation_reproduces_the_paper_bands() {
        let result = anonymiser().anonymise(&raw_records(), &[age(), height()]).unwrap();
        assert!(result.is_k_anonymous());
        assert!(result.suppressed().is_empty());
        assert_eq!(result.min_class_size(), 2);
        assert_eq!(result.k(), 2);

        // The chosen generalisation is one decade band for age and one
        // 20 cm band for height — exactly Table I's bands.
        assert_eq!(result.levels()[&age()], 1);
        assert_eq!(result.levels()[&height()], 1);

        let first = result.data().get(0).unwrap();
        assert_eq!(first.get(&age()), Some(&Value::interval(30.0, 40.0)));
        assert_eq!(first.get(&height()), Some(&Value::interval(180.0, 200.0)));
        // The sensitive value is untouched.
        assert_eq!(first.get(&weight()), Some(&Value::Float(100.0)));

        // Three equivalence classes of sizes 2, 2 and 2.
        let classes = result.classes();
        assert_eq!(classes.len(), 3);
        assert!(classes.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn higher_k_generalises_further_or_suppresses() {
        let result = KAnonymizer::new(3)
            .with_hierarchy(age(), Hierarchy::numeric([10.0, 20.0, 40.0]))
            .with_hierarchy(height(), Hierarchy::numeric([20.0, 40.0]))
            .anonymise(&raw_records(), &[age(), height()])
            .unwrap();
        assert!(result.is_k_anonymous());
        // Some generalisation level beyond (1, 1) is needed.
        let total: usize = result.levels().values().sum();
        assert!(total > 2 || !result.suppressed().is_empty());
    }

    #[test]
    fn suppression_can_be_forbidden() {
        // k larger than the dataset forces suppression of everything, which
        // the no-suppression configuration must reject.
        let result = KAnonymizer::new(7)
            .with_hierarchy(age(), Hierarchy::numeric([10.0]))
            .with_hierarchy(height(), Hierarchy::numeric([20.0]))
            .without_suppression()
            .anonymise(&raw_records(), &[age(), height()]);
        assert!(result.is_err());

        // k = 4 can only be reached by suppressing both quasi-identifier
        // columns entirely (levels 2 + 2), which the search prefers over
        // suppressing records.
        let heavily_generalised = KAnonymizer::new(4)
            .with_hierarchy(age(), Hierarchy::numeric([10.0]))
            .with_hierarchy(height(), Hierarchy::numeric([20.0]))
            .anonymise(&raw_records(), &[age(), height()])
            .unwrap();
        assert!(heavily_generalised.is_k_anonymous());
        assert!(heavily_generalised.suppressed().is_empty());
        assert_eq!(heavily_generalised.levels().values().sum::<usize>(), 4);
    }

    #[test]
    fn missing_hierarchy_is_an_error() {
        let err = KAnonymizer::new(2).anonymise(&raw_records(), &[age()]).unwrap_err();
        assert!(matches!(err, ModelError::Unknown { .. }));
    }

    #[test]
    fn invalid_hierarchy_is_rejected() {
        let err = KAnonymizer::new(2)
            .with_hierarchy(age(), Hierarchy::numeric([10.0, 5.0]))
            .anonymise(&raw_records(), &[age()])
            .unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }

    #[test]
    fn k_of_zero_is_clamped_to_one() {
        let anonymiser = KAnonymizer::new(0).with_hierarchy(age(), Hierarchy::numeric([10.0]));
        assert_eq!(anonymiser.k(), 1);
        let result = anonymiser.anonymise(&raw_records(), &[age()]).unwrap();
        // k = 1 is trivially satisfied with no generalisation at all.
        assert_eq!(result.levels()[&age()], 0);
        assert!(result.is_k_anonymous());
    }

    #[test]
    fn release_with_anon_columns_renames_fields() {
        let result = anonymiser().anonymise(&raw_records(), &[age(), height()]).unwrap();
        let release = release_with_anon_columns(&result);
        assert_eq!(release.len(), 6);
        assert!(release.columns().iter().all(FieldId::is_anonymised));
        let first = release.get(0).unwrap();
        assert!(first.get(&FieldId::new("Age_anon")).is_some());
        assert!(first.get(&age()).is_none());
    }

    #[test]
    fn empty_dataset_is_trivially_anonymous() {
        let empty = Dataset::new([age()]);
        let result = KAnonymizer::new(5)
            .with_hierarchy(age(), Hierarchy::numeric([10.0]))
            .anonymise(&empty, &[age()])
            .unwrap();
        assert!(result.is_k_anonymous());
        assert_eq!(result.suppression_rate(), 0.0);
        assert!(!result.to_string().contains("2-anonymised"));
    }

    #[test]
    fn combinations_with_sum_enumerates_bounded_vectors() {
        let combos = combinations_with_sum(&[2, 1], 2);
        assert!(combos.contains(&vec![2, 0]));
        assert!(combos.contains(&vec![1, 1]));
        assert!(!combos.contains(&vec![0, 2]));
        assert_eq!(combos.len(), 2);
        assert_eq!(combinations_with_sum(&[], 0), vec![Vec::<usize>::new()]);
        assert!(combinations_with_sum(&[], 1).is_empty());
    }
}
