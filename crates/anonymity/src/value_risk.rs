//! The paper's pseudonymisation **value risk** (Section III-B, Table I).
//!
//! Given a pseudonymised release, an adversary who can see some of the
//! quasi-identifier columns partitions the records into sets that *"now
//! appear to be identical"*; the value risk of a record `r` for a sensitive
//! field `f` is
//!
//! ```text
//! risk(r, f) = frequency(f) / size(s)
//! ```
//!
//! where `s` is the set containing `r`, `size(s)` its cardinality and
//! `frequency(f)` the number of values in `s` that are *close enough* to the
//! record's own value (the user may specify a closeness range, e.g. ±5 kg).
//! A designer policy declares a confidence threshold (e.g. 90 %) above which
//! the record counts as a **violation**.

use crate::kanon::equivalence_classes;
use privacy_model::{Dataset, FieldId, ModelError, Value};
use std::fmt;

/// The designer's value-risk policy: which sensitive field must not be
/// predictable, how close a prediction counts as a match, and the confidence
/// above which a record is a violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRiskPolicy {
    target: FieldId,
    tolerance: f64,
    confidence: f64,
}

impl ValueRiskPolicy {
    /// Creates a policy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfRange`] if `confidence` is not within
    /// `(0, 1]` or `tolerance` is negative or not finite.
    pub fn new(
        target: impl Into<FieldId>,
        tolerance: f64,
        confidence: f64,
    ) -> Result<Self, ModelError> {
        if !(f64::EPSILON..=1.0).contains(&confidence) || confidence.is_nan() {
            return Err(ModelError::OutOfRange {
                what: "confidence",
                value: confidence,
                min: 0.0,
                max: 1.0,
            });
        }
        if tolerance < 0.0 || !tolerance.is_finite() {
            return Err(ModelError::OutOfRange {
                what: "tolerance",
                value: tolerance,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        Ok(ValueRiskPolicy { target: target.into(), tolerance, confidence })
    }

    /// The paper's Case Study B policy: *"the researcher being able to
    /// predict an individual's weight to within 5 kg with at least 90 %
    /// confidence"*.
    pub fn weight_within_5kg_at_90_percent() -> Self {
        ValueRiskPolicy::new("Weight", 5.0, 0.9).expect("constants are valid")
    }

    /// The sensitive field the policy protects.
    pub fn target(&self) -> &FieldId {
        &self.target
    }

    /// The closeness tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The confidence threshold at or above which a record is a violation.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }
}

impl fmt::Display for ValueRiskPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value-risk policy: {} must not be predictable to ±{} with ≥{:.0}% confidence",
            self.target,
            self.tolerance,
            self.confidence * 100.0
        )
    }
}

/// The value risk of one record.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordRisk {
    record_index: usize,
    class_size: usize,
    frequency: usize,
}

impl RecordRisk {
    /// The index of the record within the analysed dataset.
    pub fn record_index(&self) -> usize {
        self.record_index
    }

    /// `size(s)`: the size of the record's equivalence set.
    pub fn class_size(&self) -> usize {
        self.class_size
    }

    /// `frequency(f)`: how many values in the set are close enough to the
    /// record's own value.
    pub fn frequency(&self) -> usize {
        self.frequency
    }

    /// `risk(r, f) = frequency(f) / size(s)`.
    pub fn risk(&self) -> f64 {
        if self.class_size == 0 {
            0.0
        } else {
            self.frequency as f64 / self.class_size as f64
        }
    }

    /// Renders the risk as the fraction used in Table I, e.g. `"2/4"`.
    pub fn as_fraction(&self) -> String {
        format!("{}/{}", self.frequency, self.class_size)
    }
}

impl fmt::Display for RecordRisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record {}: {}", self.record_index, self.as_fraction())
    }
}

/// The result of a value-risk analysis for one visible quasi-identifier set.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRiskReport {
    visible: Vec<FieldId>,
    policy: ValueRiskPolicy,
    records: Vec<RecordRisk>,
}

impl ValueRiskReport {
    /// The quasi-identifiers assumed visible to the adversary.
    pub fn visible(&self) -> &[FieldId] {
        &self.visible
    }

    /// The policy the analysis was run against.
    pub fn policy(&self) -> &ValueRiskPolicy {
        &self.policy
    }

    /// Per-record risks, in dataset order.
    pub fn records(&self) -> &[RecordRisk] {
        &self.records
    }

    /// The records whose risk reaches the policy's confidence threshold.
    pub fn violations(&self) -> Vec<&RecordRisk> {
        self.records.iter().filter(|r| r.risk() >= self.policy.confidence()).collect()
    }

    /// Number of violating records (the paper's "Violations" row).
    pub fn violation_count(&self) -> usize {
        self.violations().len()
    }

    /// The fraction of records violating the policy.
    pub fn violation_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.violation_count() as f64 / self.records.len() as f64
        }
    }

    /// The maximum per-record risk.
    pub fn max_risk(&self) -> f64 {
        self.records.iter().map(RecordRisk::risk).fold(0.0, f64::max)
    }
}

impl fmt::Display for ValueRiskReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let visible: Vec<&str> = self.visible.iter().map(FieldId::as_str).collect();
        write!(
            f,
            "value risk with visible {{{}}}: {} violations of {} records (max risk {:.2})",
            visible.join(", "),
            self.violation_count(),
            self.records.len(),
            self.max_risk()
        )
    }
}

/// Computes the value risk of every record of `release` for the policy's
/// target field, assuming the adversary can see exactly the `visible`
/// quasi-identifier columns.
///
/// The release should contain the (generalised) quasi-identifier columns and
/// the target column with its original values — exactly the shape produced by
/// [`crate::kanon::KAnonymizer::anonymise`].
///
/// # Errors
///
/// Returns [`ModelError::Unknown`] if the target field is not a column of the
/// release.
pub fn value_risk(
    release: &Dataset,
    visible: &[FieldId],
    policy: &ValueRiskPolicy,
) -> Result<ValueRiskReport, ModelError> {
    if !release.columns().iter().any(|c| c == policy.target()) {
        return Err(ModelError::unknown("dataset column", policy.target().as_str()));
    }

    let classes = equivalence_classes(release, visible);
    let mut records: Vec<RecordRisk> = Vec::with_capacity(release.len());

    for class in &classes {
        // Gather the target values of the class members once.
        let values: Vec<(usize, Value)> = class
            .members()
            .iter()
            .map(|&index| {
                (
                    index,
                    release
                        .get(index)
                        .and_then(|r| r.get(policy.target()).cloned())
                        .unwrap_or(Value::Null),
                )
            })
            .collect();
        for (index, value) in &values {
            let frequency = values
                .iter()
                .filter(|(_, other)| other.is_close_to(value, policy.tolerance()))
                .count();
            records.push(RecordRisk { record_index: *index, class_size: class.len(), frequency });
        }
    }

    records.sort_by_key(RecordRisk::record_index);
    Ok(ValueRiskReport { visible: visible.to_vec(), policy: policy.clone(), records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::Record;

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn height() -> FieldId {
        FieldId::new("Height")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    /// The six 2-anonymised records of Table I.
    fn table1_release() -> Dataset {
        let rows: [(f64, f64, f64, f64, f64); 6] = [
            (30.0, 40.0, 180.0, 200.0, 100.0),
            (30.0, 40.0, 180.0, 200.0, 102.0),
            (20.0, 30.0, 180.0, 200.0, 110.0),
            (20.0, 30.0, 180.0, 200.0, 111.0),
            (20.0, 30.0, 160.0, 180.0, 80.0),
            (20.0, 30.0, 160.0, 180.0, 110.0),
        ];
        Dataset::from_records(
            [age(), height(), weight()],
            rows.iter().map(|(alo, ahi, hlo, hhi, w)| {
                Record::new()
                    .with("Age", Value::interval(*alo, *ahi))
                    .with("Height", Value::interval(*hlo, *hhi))
                    .with("Weight", *w)
            }),
        )
    }

    #[test]
    fn policy_validation() {
        assert!(ValueRiskPolicy::new("Weight", 5.0, 0.9).is_ok());
        assert!(ValueRiskPolicy::new("Weight", -1.0, 0.9).is_err());
        assert!(ValueRiskPolicy::new("Weight", 5.0, 0.0).is_err());
        assert!(ValueRiskPolicy::new("Weight", 5.0, 1.5).is_err());
        assert!(ValueRiskPolicy::new("Weight", f64::NAN, 0.9).is_err());
        let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
        assert_eq!(policy.target().as_str(), "Weight");
        assert_eq!(policy.tolerance(), 5.0);
        assert_eq!(policy.confidence(), 0.9);
        assert!(policy.to_string().contains("90%"));
    }

    #[test]
    fn table1_height_column_matches_the_paper() {
        let release = table1_release();
        let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
        let report = value_risk(&release, &[height()], &policy).unwrap();
        let fractions: Vec<String> = report.records().iter().map(RecordRisk::as_fraction).collect();
        assert_eq!(fractions, vec!["2/4", "2/4", "2/4", "2/4", "1/2", "1/2"]);
        assert_eq!(report.violation_count(), 0);
    }

    #[test]
    fn table1_age_column_matches_the_paper() {
        let release = table1_release();
        let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
        let report = value_risk(&release, &[age()], &policy).unwrap();
        let fractions: Vec<String> = report.records().iter().map(RecordRisk::as_fraction).collect();
        assert_eq!(fractions, vec!["2/2", "2/2", "3/4", "3/4", "1/4", "3/4"]);
        assert_eq!(report.violation_count(), 2);
    }

    #[test]
    fn table1_age_height_column_matches_the_paper() {
        let release = table1_release();
        let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
        let report = value_risk(&release, &[age(), height()], &policy).unwrap();
        let fractions: Vec<String> = report.records().iter().map(RecordRisk::as_fraction).collect();
        assert_eq!(fractions, vec!["2/2", "2/2", "2/2", "2/2", "1/2", "1/2"]);
        assert_eq!(report.violation_count(), 4);
        assert_eq!(report.violation_rate(), 4.0 / 6.0);
        assert_eq!(report.max_risk(), 1.0);
    }

    #[test]
    fn no_visible_fields_means_one_big_class() {
        let release = table1_release();
        let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
        let report = value_risk(&release, &[], &policy).unwrap();
        assert!(report.records().iter().all(|r| r.class_size() == 6));
        assert_eq!(report.violation_count(), 0);
    }

    #[test]
    fn unknown_target_is_an_error() {
        let release = table1_release();
        let policy = ValueRiskPolicy::new("BloodPressure", 5.0, 0.9).unwrap();
        assert!(matches!(value_risk(&release, &[age()], &policy), Err(ModelError::Unknown { .. })));
    }

    #[test]
    fn zero_tolerance_requires_exact_matches() {
        let release = table1_release();
        let policy = ValueRiskPolicy::new("Weight", 0.0, 0.5).unwrap();
        let report = value_risk(&release, &[age(), height()], &policy).unwrap();
        // Record 5 (weight 110) is alone with record 4 (weight 80): only its
        // own value matches exactly.
        let fractions: Vec<String> = report.records().iter().map(RecordRisk::as_fraction).collect();
        assert_eq!(fractions, vec!["1/2", "1/2", "1/2", "1/2", "1/2", "1/2"]);
        assert_eq!(report.violation_count(), 6);
    }

    #[test]
    fn report_display_is_informative() {
        let release = table1_release();
        let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
        let report = value_risk(&release, &[age()], &policy).unwrap();
        let text = report.to_string();
        assert!(text.contains("visible {Age}"));
        assert!(text.contains("2 violations"));
        assert_eq!(report.records()[0].to_string(), "record 0: 2/2");
    }
}
