//! Distinct l-diversity checking.
//!
//! The paper notes that the value risk it models *"is a risk of
//! k-anonymization that is removed when l-diversity is considered"*. To let
//! the benchmarks demonstrate that trade-off we implement the simplest
//! (distinct) form of l-diversity: every equivalence class must contain at
//! least `l` *well-represented* (here: distinct, up to a closeness tolerance)
//! values of the sensitive attribute.

use crate::kanon::equivalence_classes;
use privacy_model::{Dataset, FieldId, Value};

/// The number of distinct sensitive values (up to `tolerance`) in the
/// smallest-diversity equivalence class — i.e. the largest `l` for which the
/// release is distinct-l-diverse.
///
/// Returns 0 for an empty release.
pub fn l_diversity_of(
    release: &Dataset,
    quasi_identifiers: &[FieldId],
    sensitive: &FieldId,
    tolerance: f64,
) -> usize {
    let classes = equivalence_classes(release, quasi_identifiers);
    classes
        .iter()
        .map(|class| {
            let values: Vec<Value> = class
                .members()
                .iter()
                .filter_map(|&i| release.get(i).and_then(|r| r.get(sensitive).cloned()))
                .collect();
            distinct_up_to_tolerance(&values, tolerance)
        })
        .min()
        .unwrap_or(0)
}

/// Returns `true` if every equivalence class of the release contains at least
/// `l` distinct sensitive values (up to `tolerance`).
pub fn satisfies_l_diversity(
    release: &Dataset,
    quasi_identifiers: &[FieldId],
    sensitive: &FieldId,
    l: usize,
    tolerance: f64,
) -> bool {
    if release.is_empty() {
        return true;
    }
    l_diversity_of(release, quasi_identifiers, sensitive, tolerance) >= l
}

/// Greedy count of values that are pairwise further apart than `tolerance`.
fn distinct_up_to_tolerance(values: &[Value], tolerance: f64) -> usize {
    let mut representatives: Vec<&Value> = Vec::new();
    for value in values {
        if !representatives.iter().any(|rep| rep.is_close_to(value, tolerance)) {
            representatives.push(value);
        }
    }
    representatives.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::Record;

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    fn release(rows: &[(f64, f64, f64)]) -> Dataset {
        Dataset::from_records(
            [age(), weight()],
            rows.iter().map(|(lo, hi, w)| {
                Record::new().with("Age", Value::interval(*lo, *hi)).with("Weight", *w)
            }),
        )
    }

    #[test]
    fn homogeneous_classes_have_diversity_one() {
        // Both members of the 30-40 class have (close) weights -> l = 1.
        let data = release(&[(30.0, 40.0, 100.0), (30.0, 40.0, 102.0)]);
        assert_eq!(l_diversity_of(&data, &[age()], &weight(), 5.0), 1);
        assert!(satisfies_l_diversity(&data, &[age()], &weight(), 1, 5.0));
        assert!(!satisfies_l_diversity(&data, &[age()], &weight(), 2, 5.0));
    }

    #[test]
    fn diverse_classes_raise_l() {
        let data = release(&[
            (30.0, 40.0, 100.0),
            (30.0, 40.0, 150.0),
            (20.0, 30.0, 80.0),
            (20.0, 30.0, 120.0),
        ]);
        assert_eq!(l_diversity_of(&data, &[age()], &weight(), 5.0), 2);
        assert!(satisfies_l_diversity(&data, &[age()], &weight(), 2, 5.0));
    }

    #[test]
    fn the_minimum_class_determines_l() {
        let data = release(&[
            (30.0, 40.0, 100.0),
            (30.0, 40.0, 150.0),
            // This class is homogeneous.
            (20.0, 30.0, 80.0),
            (20.0, 30.0, 81.0),
        ]);
        assert_eq!(l_diversity_of(&data, &[age()], &weight(), 5.0), 1);
    }

    #[test]
    fn tolerance_zero_counts_exact_distinct_values() {
        let data = release(&[(30.0, 40.0, 100.0), (30.0, 40.0, 102.0)]);
        assert_eq!(l_diversity_of(&data, &[age()], &weight(), 0.0), 2);
    }

    #[test]
    fn empty_release_is_trivially_diverse() {
        let data = Dataset::new([age(), weight()]);
        assert_eq!(l_diversity_of(&data, &[age()], &weight(), 5.0), 0);
        assert!(satisfies_l_diversity(&data, &[age()], &weight(), 3, 5.0));
    }

    #[test]
    fn table1_age_height_release_is_not_2_diverse() {
        // The Table I release violates 2-diversity under a ±5 kg closeness
        // notion, which is exactly why the paper's value risk flags it.
        let rows =
            [(30.0, 40.0, 100.0), (30.0, 40.0, 102.0), (20.0, 30.0, 110.0), (20.0, 30.0, 111.0)];
        let data = release(&rows);
        assert!(!satisfies_l_diversity(&data, &[age()], &weight(), 2, 5.0));
    }
}
