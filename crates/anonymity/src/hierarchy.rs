//! Generalisation hierarchies.
//!
//! A generalisation hierarchy describes how a quasi-identifier value can be
//! replaced by progressively coarser values: level 0 is the original value,
//! higher levels reveal less. Numeric hierarchies generalise values into
//! interval bands of growing width (the paper's `30-40` age bands and
//! `180-200` height bands are level-1 generalisations with widths 10 and 20);
//! categorical hierarchies map values onto ancestor labels; the top of every
//! hierarchy is full suppression (`*`).

use privacy_model::{ModelError, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A generalisation hierarchy for one quasi-identifier.
#[derive(Debug, Clone, PartialEq)]
pub enum Hierarchy {
    /// Numeric generalisation into aligned bands. `widths[l]` is the band
    /// width at level `l + 1` (level 0 keeps the exact value); the final
    /// level after all widths is suppression.
    Numeric {
        /// Band widths for levels `1..=widths.len()` in increasing order.
        widths: Vec<f64>,
    },
    /// Categorical generalisation. `levels[l]` maps an original value to its
    /// generalised label at level `l + 1`; missing entries generalise to
    /// `"*"`.
    Categorical {
        /// Per-level mapping tables.
        levels: Vec<BTreeMap<String, String>>,
    },
}

impl Hierarchy {
    /// Creates a numeric hierarchy from band widths.
    ///
    /// Widths that are not strictly increasing and positive are rejected.
    pub fn numeric(widths: impl IntoIterator<Item = f64>) -> Self {
        let widths: Vec<f64> = widths.into_iter().collect();
        Hierarchy::Numeric { widths }
    }

    /// Creates a categorical hierarchy from per-level mapping tables.
    pub fn categorical(levels: impl IntoIterator<Item = BTreeMap<String, String>>) -> Self {
        Hierarchy::Categorical { levels: levels.into_iter().collect() }
    }

    /// Validates the hierarchy definition.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if a numeric hierarchy has
    /// non-positive or non-increasing widths.
    pub fn validate(&self) -> Result<(), ModelError> {
        if let Hierarchy::Numeric { widths } = self {
            let mut previous = 0.0;
            for width in widths {
                if *width <= 0.0 || !width.is_finite() {
                    return Err(ModelError::invalid(format!(
                        "generalisation band width {width} must be positive and finite"
                    )));
                }
                if *width <= previous {
                    return Err(ModelError::invalid(
                        "generalisation band widths must be strictly increasing",
                    ));
                }
                previous = *width;
            }
        }
        Ok(())
    }

    /// Number of generalisation levels, including level 0 (exact value) and
    /// the top suppression level.
    pub fn level_count(&self) -> usize {
        match self {
            Hierarchy::Numeric { widths } => widths.len() + 2,
            Hierarchy::Categorical { levels } => levels.len() + 2,
        }
    }

    /// The maximum level (full suppression).
    pub fn max_level(&self) -> usize {
        self.level_count() - 1
    }

    /// Generalises a value to the given level.
    ///
    /// Level 0 returns the value unchanged; the maximum level returns
    /// [`Value::Null`] (suppression). Values that cannot be generalised at a
    /// requested level (non-numeric values in a numeric hierarchy, unknown
    /// categories) are suppressed.
    pub fn generalise(&self, value: &Value, level: usize) -> Value {
        if level == 0 {
            return value.clone();
        }
        if level >= self.max_level() {
            return Value::Null;
        }
        match self {
            Hierarchy::Numeric { widths } => match value.as_f64() {
                Some(v) => {
                    let width = widths[level - 1];
                    let lo = (v / width).floor() * width;
                    Value::interval(lo, lo + width)
                }
                None => Value::Null,
            },
            Hierarchy::Categorical { levels } => {
                let key = match value {
                    Value::Text(s) => s.clone(),
                    other => other.to_string(),
                };
                levels[level - 1]
                    .get(&key)
                    .map(|label| Value::Text(label.clone()))
                    .unwrap_or(Value::Null)
            }
        }
    }
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hierarchy::Numeric { widths } => {
                write!(f, "numeric hierarchy with band widths {widths:?}")
            }
            Hierarchy::Categorical { levels } => {
                write!(f, "categorical hierarchy with {} levels", levels.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_generalisation_produces_aligned_bands() {
        let hierarchy = Hierarchy::numeric([10.0, 20.0]);
        assert!(hierarchy.validate().is_ok());
        assert_eq!(hierarchy.level_count(), 4);

        // Level 0: exact; level 1: decade bands; level 2: 20-wide bands;
        // level 3: suppression.
        assert_eq!(hierarchy.generalise(&Value::Int(34), 0), Value::Int(34));
        assert_eq!(hierarchy.generalise(&Value::Int(34), 1), Value::interval(30.0, 40.0));
        assert_eq!(hierarchy.generalise(&Value::Int(34), 2), Value::interval(20.0, 40.0));
        assert_eq!(hierarchy.generalise(&Value::Int(34), 3), Value::Null);
        assert_eq!(hierarchy.generalise(&Value::Int(34), 99), Value::Null);

        // Paper bands: height 185 generalises to 180-200 with width 20.
        let height = Hierarchy::numeric([20.0]);
        assert_eq!(height.generalise(&Value::Int(185), 1), Value::interval(180.0, 200.0));
    }

    #[test]
    fn numeric_generalisation_of_non_numeric_values_suppresses() {
        let hierarchy = Hierarchy::numeric([10.0]);
        assert_eq!(hierarchy.generalise(&Value::from("abc"), 1), Value::Null);
    }

    #[test]
    fn invalid_numeric_hierarchies_are_rejected() {
        assert!(Hierarchy::numeric([0.0]).validate().is_err());
        assert!(Hierarchy::numeric([-5.0]).validate().is_err());
        assert!(Hierarchy::numeric([10.0, 10.0]).validate().is_err());
        assert!(Hierarchy::numeric([20.0, 10.0]).validate().is_err());
        assert!(Hierarchy::numeric([f64::NAN]).validate().is_err());
        assert!(Hierarchy::numeric([10.0, 20.0, 40.0]).validate().is_ok());
    }

    #[test]
    fn categorical_generalisation_follows_the_mapping() {
        let level1: BTreeMap<String, String> = [
            ("flu".to_owned(), "respiratory".to_owned()),
            ("asthma".to_owned(), "respiratory".to_owned()),
            ("diabetes".to_owned(), "metabolic".to_owned()),
        ]
        .into_iter()
        .collect();
        let hierarchy = Hierarchy::categorical([level1]);
        assert_eq!(hierarchy.level_count(), 3);
        assert_eq!(hierarchy.generalise(&Value::from("flu"), 0), Value::from("flu"));
        assert_eq!(hierarchy.generalise(&Value::from("flu"), 1), Value::from("respiratory"));
        // Unknown categories are suppressed rather than leaked.
        assert_eq!(hierarchy.generalise(&Value::from("unknown"), 1), Value::Null);
        assert_eq!(hierarchy.generalise(&Value::from("flu"), 2), Value::Null);
    }

    #[test]
    fn display_summarises_the_hierarchy() {
        assert!(Hierarchy::numeric([10.0]).to_string().contains("band widths"));
        assert!(Hierarchy::categorical([]).to_string().contains("0 levels"));
    }
}
