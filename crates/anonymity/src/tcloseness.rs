//! t-closeness checking.
//!
//! l-diversity removes the paper's value risk for homogeneous classes but is
//! still vulnerable to *skewness* and *similarity* attacks: an equivalence
//! class whose sensitive-value distribution differs strongly from the whole
//! release still leaks information.  t-closeness (Li et al., ICDE 2007)
//! bounds, for every equivalence class, the distance between the class
//! distribution of the sensitive attribute and its global distribution.
//!
//! Two distances are used, following the original proposal:
//!
//! * numeric attributes — the ordered-distance Earth Mover's Distance over
//!   the sorted value domain, normalised by `m - 1` (so the result is in
//!   `[0, 1]`);
//! * categorical attributes — the total-variation distance
//!   `½ · Σ |p(v) − q(v)|`.

use crate::kanon::equivalence_classes;
use privacy_model::{Dataset, FieldId, Value};
use std::collections::BTreeMap;

/// The largest distance between any equivalence class's sensitive-value
/// distribution and the global distribution — i.e. the smallest `t` for
/// which the release is t-close.
///
/// Returns 0.0 for an empty release or when the sensitive column is missing.
///
/// # Examples
///
/// ```
/// use privacy_anonymity::tcloseness::t_closeness_of;
/// use privacy_model::{Dataset, FieldId, Record, Value};
///
/// let release = Dataset::from_records(
///     [FieldId::new("Age"), FieldId::new("Weight")],
///     [
///         Record::new().with("Age", Value::interval(20.0, 30.0)).with("Weight", 80.0),
///         Record::new().with("Age", Value::interval(20.0, 30.0)).with("Weight", 110.0),
///     ],
/// );
/// // A single class matching the global distribution is perfectly close.
/// let t = t_closeness_of(&release, &[FieldId::new("Age")], &FieldId::new("Weight"));
/// assert!(t.abs() < 1e-9);
/// ```
pub fn t_closeness_of(
    release: &Dataset,
    quasi_identifiers: &[FieldId],
    sensitive: &FieldId,
) -> f64 {
    if release.is_empty() {
        return 0.0;
    }
    let overall: Vec<Value> =
        release.iter().filter_map(|record| record.get(sensitive).cloned()).collect();
    if overall.is_empty() {
        return 0.0;
    }
    let numeric = overall.iter().all(|v| v.as_f64().is_some());

    equivalence_classes(release, quasi_identifiers)
        .iter()
        .map(|class| {
            let class_values: Vec<Value> = class
                .members()
                .iter()
                .filter_map(|&i| release.get(i).and_then(|r| r.get(sensitive).cloned()))
                .collect();
            if class_values.is_empty() {
                0.0
            } else if numeric {
                numeric_emd(&class_values, &overall)
            } else {
                total_variation(&class_values, &overall)
            }
        })
        .fold(0.0, f64::max)
}

/// Returns `true` if every equivalence class's sensitive-value distribution
/// is within distance `t` of the global distribution.
pub fn satisfies_t_closeness(
    release: &Dataset,
    quasi_identifiers: &[FieldId],
    sensitive: &FieldId,
    t: f64,
) -> bool {
    t_closeness_of(release, quasi_identifiers, sensitive) <= t + 1e-12
}

/// Ordered-distance EMD between the class and overall numeric distributions,
/// computed over the sorted set of distinct values observed in the release
/// and normalised by `m - 1` so the result lies in `[0, 1]`.
fn numeric_emd(class: &[Value], overall: &[Value]) -> f64 {
    let mut domain: Vec<f64> = overall.iter().filter_map(Value::as_f64).collect();
    domain.sort_by(|a, b| a.partial_cmp(b).expect("sensitive values must not be NaN"));
    domain.dedup();
    let m = domain.len();
    if m <= 1 {
        return 0.0;
    }
    let p = numeric_distribution(class, &domain);
    let q = numeric_distribution(overall, &domain);

    // EMD with ordered ground distance |i - j| / (m - 1): the prefix-sum form.
    let mut cumulative = 0.0;
    let mut total = 0.0;
    for i in 0..m {
        cumulative += p[i] - q[i];
        total += cumulative.abs();
    }
    total / (m as f64 - 1.0)
}

fn numeric_distribution(values: &[Value], domain: &[f64]) -> Vec<f64> {
    let mut histogram = vec![0.0; domain.len()];
    let mut count = 0.0;
    for value in values.iter().filter_map(Value::as_f64) {
        if let Some(index) = domain.iter().position(|d| (d - value).abs() < 1e-12) {
            histogram[index] += 1.0;
            count += 1.0;
        }
    }
    if count > 0.0 {
        for entry in &mut histogram {
            *entry /= count;
        }
    }
    histogram
}

/// Total-variation distance `½ · Σ |p(v) − q(v)|` between the class and
/// overall categorical distributions.
fn total_variation(class: &[Value], overall: &[Value]) -> f64 {
    let p = categorical_distribution(class);
    let q = categorical_distribution(overall);
    let mut keys: Vec<&String> = p.keys().chain(q.keys()).collect();
    keys.sort();
    keys.dedup();
    0.5 * keys
        .into_iter()
        .map(|key| (p.get(key).copied().unwrap_or(0.0) - q.get(key).copied().unwrap_or(0.0)).abs())
        .sum::<f64>()
}

fn categorical_distribution(values: &[Value]) -> BTreeMap<String, f64> {
    let mut histogram: BTreeMap<String, f64> = BTreeMap::new();
    for value in values {
        *histogram.entry(value.to_string()).or_insert(0.0) += 1.0;
    }
    let total: f64 = histogram.values().sum();
    if total > 0.0 {
        for entry in histogram.values_mut() {
            *entry /= total;
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::Record;

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    fn numeric_release(rows: &[(f64, f64, f64)]) -> Dataset {
        Dataset::from_records(
            [age(), weight()],
            rows.iter().map(|(lo, hi, w)| {
                Record::new().with("Age", Value::interval(*lo, *hi)).with("Weight", *w)
            }),
        )
    }

    #[test]
    fn single_class_release_is_perfectly_close() {
        let release = numeric_release(&[(20.0, 30.0, 80.0), (20.0, 30.0, 110.0)]);
        assert!(t_closeness_of(&release, &[age()], &weight()) < 1e-9);
        assert!(satisfies_t_closeness(&release, &[age()], &weight(), 0.0));
    }

    #[test]
    fn skewed_class_is_far_from_the_global_distribution() {
        // One class holds the two lowest weights, the other the two highest.
        let release = numeric_release(&[
            (20.0, 30.0, 60.0),
            (20.0, 30.0, 65.0),
            (30.0, 40.0, 140.0),
            (30.0, 40.0, 145.0),
        ]);
        // Each class holds one end of the weight range: p = [½,½,0,0] vs the
        // uniform q gives an ordered EMD of ⅓.
        let t = t_closeness_of(&release, &[age()], &weight());
        assert!((t - 1.0 / 3.0).abs() < 1e-9, "expected t = 1/3, got t = {t}");
        assert!(!satisfies_t_closeness(&release, &[age()], &weight(), 0.3));
    }

    #[test]
    fn mixing_classes_reduces_the_distance() {
        let skewed = numeric_release(&[
            (20.0, 30.0, 60.0),
            (20.0, 30.0, 65.0),
            (30.0, 40.0, 140.0),
            (30.0, 40.0, 145.0),
        ]);
        let mixed = numeric_release(&[
            (20.0, 30.0, 60.0),
            (20.0, 30.0, 140.0),
            (30.0, 40.0, 65.0),
            (30.0, 40.0, 145.0),
        ]);
        let t_skewed = t_closeness_of(&skewed, &[age()], &weight());
        let t_mixed = t_closeness_of(&mixed, &[age()], &weight());
        assert!(t_mixed < t_skewed);
    }

    #[test]
    fn no_quasi_identifiers_means_one_class_and_zero_distance() {
        let release = numeric_release(&[(20.0, 30.0, 60.0), (30.0, 40.0, 140.0)]);
        assert!(t_closeness_of(&release, &[], &weight()) < 1e-9);
    }

    #[test]
    fn categorical_sensitive_values_use_total_variation() {
        let release = Dataset::from_records(
            [age(), diagnosis()],
            [
                Record::new().with("Age", Value::interval(20.0, 30.0)).with("Diagnosis", "flu"),
                Record::new().with("Age", Value::interval(20.0, 30.0)).with("Diagnosis", "flu"),
                Record::new().with("Age", Value::interval(30.0, 40.0)).with("Diagnosis", "cancer"),
                Record::new().with("Age", Value::interval(30.0, 40.0)).with("Diagnosis", "cancer"),
            ],
        );
        // Each class is homogeneous while the global split is 50/50 → TV = 0.5.
        let t = t_closeness_of(&release, &[age()], &diagnosis());
        assert!((t - 0.5).abs() < 1e-9, "t = {t}");
        assert!(satisfies_t_closeness(&release, &[age()], &diagnosis(), 0.5));
        assert!(!satisfies_t_closeness(&release, &[age()], &diagnosis(), 0.4));
    }

    #[test]
    fn empty_release_is_trivially_close() {
        let release = Dataset::new([age(), weight()]);
        assert_eq!(t_closeness_of(&release, &[age()], &weight()), 0.0);
        assert!(satisfies_t_closeness(&release, &[age()], &weight(), 0.0));
    }

    #[test]
    fn missing_sensitive_column_yields_zero_distance() {
        let release = numeric_release(&[(20.0, 30.0, 60.0)]);
        assert_eq!(t_closeness_of(&release, &[age()], &FieldId::new("Absent")), 0.0);
    }

    #[test]
    fn distance_is_bounded_by_one() {
        let release = numeric_release(&[(20.0, 30.0, 1.0), (30.0, 40.0, 1000.0)]);
        let t = t_closeness_of(&release, &[age()], &weight());
        assert!(t <= 1.0 + 1e-9);
        assert!(t > 0.0);
    }
}
