//! # privacy-access
//!
//! Access-control substrate for the model-driven privacy framework.
//!
//! The paper assumes that each datastore comes with *"the data schema and
//! access control policies associated with each datastore — that is a
//! description of what data is stored, and which actors have access to that
//! data"*, and restricts itself to *"traditional access control lists and
//! role-based access control"*. This crate implements both:
//!
//! * [`permission`] — the operations an actor may be granted on datastore
//!   fields (read, create, delete, disclose) and field scopes;
//! * [`acl`] — access-control lists: direct actor → datastore/field grants;
//! * [`rbac`] — role-based access control: roles carry grants, actors are
//!   assigned roles (with optional role inheritance);
//! * [`policy`] — the combined [`policy::AccessPolicy`] queried by the LTS
//!   generator and risk analyses (ACL ∪ RBAC), plus [`policy::PolicyDelta`]
//!   for expressing the access-policy changes evaluated in the paper's Case
//!   Study A (revoking the Administrator's read access to the EHR).
//!
//! # Example
//!
//! ```
//! use privacy_access::prelude::*;
//! use privacy_model::{ActorId, DatastoreId, FieldId};
//!
//! let mut policy = AccessPolicy::new();
//! policy.acl_mut().grant(Grant::new(
//!     ActorId::new("Doctor"),
//!     DatastoreId::new("EHR"),
//!     FieldScope::all(),
//!     [Permission::Read, Permission::Create],
//! ));
//!
//! assert!(policy.can(
//!     &ActorId::new("Doctor"),
//!     Permission::Read,
//!     &DatastoreId::new("EHR"),
//!     &FieldId::new("Diagnosis"),
//! ));
//! assert!(!policy.can(
//!     &ActorId::new("Researcher"),
//!     Permission::Read,
//!     &DatastoreId::new("EHR"),
//!     &FieldId::new("Diagnosis"),
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abac;
pub mod acl;
pub mod permission;
pub mod policy;
pub mod rbac;

pub use abac::{AbacPolicy, AbacRule, AttributePredicate, AttributeValue};
pub use acl::{AccessControlList, Grant};
pub use permission::{FieldScope, Permission};
pub use policy::{AccessPolicy, PolicyChange, PolicyDelta};
pub use rbac::{RbacPolicy, Role, RoleGrant};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::abac::{AbacPolicy, AbacRule, AttributePredicate, AttributeValue};
    pub use crate::acl::{AccessControlList, Grant};
    pub use crate::permission::{FieldScope, Permission};
    pub use crate::policy::{AccessPolicy, PolicyChange, PolicyDelta};
    pub use crate::rbac::{RbacPolicy, Role, RoleGrant};
}
