//! Attribute-based access control (ABAC).
//!
//! The paper restricts itself to ACLs and RBAC but explicitly states that the
//! authors *"seek to extend the approach to consider alternative forms of
//! access control"*. This module provides that extension point: an
//! attribute-based policy whose rules grant permissions when predicates over
//! actor attributes, datastore attributes and the requested field hold. The
//! LTS generator and risk analyses are agnostic to which component granted an
//! access, so ABAC rules participate in exposure computation exactly like ACL
//! grants.

use crate::permission::Permission;
use privacy_model::{ActorId, DatastoreId, FieldId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An attribute value attached to an actor or datastore.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttributeValue {
    /// A textual attribute (e.g. `department = "cardiology"`).
    Text(String),
    /// A Boolean attribute (e.g. `on_duty = true`).
    Flag(bool),
    /// An integer attribute (e.g. `clearance = 3`).
    Number(i64),
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Text(s) => f.write_str(s),
            AttributeValue::Flag(b) => write!(f, "{b}"),
            AttributeValue::Number(n) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for AttributeValue {
    fn from(value: &str) -> Self {
        AttributeValue::Text(value.to_owned())
    }
}

impl From<bool> for AttributeValue {
    fn from(value: bool) -> Self {
        AttributeValue::Flag(value)
    }
}

impl From<i64> for AttributeValue {
    fn from(value: i64) -> Self {
        AttributeValue::Number(value)
    }
}

/// A predicate over a single attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributePredicate {
    /// The attribute must be present and equal to the value.
    Equals(String, AttributeValue),
    /// The attribute must be present and (numerically) at least the value.
    AtLeast(String, i64),
    /// The attribute must simply be present.
    Present(String),
}

impl AttributePredicate {
    fn holds(&self, attributes: &BTreeMap<String, AttributeValue>) -> bool {
        match self {
            AttributePredicate::Equals(name, expected) => attributes.get(name) == Some(expected),
            AttributePredicate::AtLeast(name, minimum) => matches!(
                attributes.get(name),
                Some(AttributeValue::Number(actual)) if actual >= minimum
            ),
            AttributePredicate::Present(name) => attributes.contains_key(name),
        }
    }
}

impl fmt::Display for AttributePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributePredicate::Equals(name, value) => write!(f, "{name} == {value}"),
            AttributePredicate::AtLeast(name, min) => write!(f, "{name} >= {min}"),
            AttributePredicate::Present(name) => write!(f, "has {name}"),
        }
    }
}

/// One ABAC rule: if every actor predicate and every datastore predicate
/// holds, the listed permissions are granted on the listed fields (empty
/// field set = every field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbacRule {
    name: String,
    actor_predicates: Vec<AttributePredicate>,
    datastore_predicates: Vec<AttributePredicate>,
    fields: BTreeSet<FieldId>,
    permissions: BTreeSet<Permission>,
}

impl AbacRule {
    /// Creates a rule granting the permissions on every field.
    pub fn new(name: impl Into<String>, permissions: impl IntoIterator<Item = Permission>) -> Self {
        AbacRule {
            name: name.into(),
            actor_predicates: Vec::new(),
            datastore_predicates: Vec::new(),
            fields: BTreeSet::new(),
            permissions: permissions.into_iter().collect(),
        }
    }

    /// Builder-style: requires an actor predicate.
    pub fn when_actor(mut self, predicate: AttributePredicate) -> Self {
        self.actor_predicates.push(predicate);
        self
    }

    /// Builder-style: requires a datastore predicate.
    pub fn when_datastore(mut self, predicate: AttributePredicate) -> Self {
        self.datastore_predicates.push(predicate);
        self
    }

    /// Builder-style: restricts the rule to the given fields.
    pub fn on_fields(mut self, fields: impl IntoIterator<Item = FieldId>) -> Self {
        self.fields = fields.into_iter().collect();
        self
    }

    /// The rule name (used in explanations).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn covers_field(&self, field: &FieldId) -> bool {
        self.fields.is_empty() || self.fields.contains(field)
    }
}

impl fmt::Display for AbacRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let perms: Vec<String> = self.permissions.iter().map(|p| p.to_string()).collect();
        write!(f, "rule `{}` grants {}", self.name, perms.join("/"))
    }
}

/// An attribute-based access-control policy: attribute assignments plus rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbacPolicy {
    actor_attributes: BTreeMap<ActorId, BTreeMap<String, AttributeValue>>,
    datastore_attributes: BTreeMap<DatastoreId, BTreeMap<String, AttributeValue>>,
    rules: Vec<AbacRule>,
}

impl AbacPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        AbacPolicy::default()
    }

    /// Assigns an attribute to an actor.
    pub fn set_actor_attribute(
        &mut self,
        actor: impl Into<ActorId>,
        name: impl Into<String>,
        value: impl Into<AttributeValue>,
    ) -> &mut Self {
        self.actor_attributes.entry(actor.into()).or_default().insert(name.into(), value.into());
        self
    }

    /// Assigns an attribute to a datastore.
    pub fn set_datastore_attribute(
        &mut self,
        datastore: impl Into<DatastoreId>,
        name: impl Into<String>,
        value: impl Into<AttributeValue>,
    ) -> &mut Self {
        self.datastore_attributes
            .entry(datastore.into())
            .or_default()
            .insert(name.into(), value.into());
        self
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: AbacRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The rules.
    pub fn rules(&self) -> &[AbacRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if some rule allows the access.
    pub fn allows(
        &self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> bool {
        self.matching_rule(actor, permission, datastore, field).is_some()
    }

    /// The first rule that allows the access, if any — useful to explain why
    /// an exposure exists.
    pub fn matching_rule(
        &self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> Option<&AbacRule> {
        let empty = BTreeMap::new();
        let actor_attributes = self.actor_attributes.get(actor).unwrap_or(&empty);
        let datastore_attributes = self.datastore_attributes.get(datastore).unwrap_or(&empty);
        self.rules.iter().find(|rule| {
            rule.permissions.contains(&permission)
                && rule.covers_field(field)
                && rule.actor_predicates.iter().all(|p| p.holds(actor_attributes))
                && rule.datastore_predicates.iter().all(|p| p.holds(datastore_attributes))
        })
    }

    /// The actors (among those with attribute assignments) allowed the access.
    pub fn actors_with(
        &self,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> BTreeSet<ActorId> {
        self.actor_attributes
            .keys()
            .filter(|actor| self.allows(actor, permission, datastore, field))
            .cloned()
            .collect()
    }
}

impl fmt::Display for AbacPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "abac: {} rules, {} attributed actors, {} attributed datastores",
            self.rules.len(),
            self.actor_attributes.len(),
            self.datastore_attributes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ehr() -> DatastoreId {
        DatastoreId::new("EHR")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    fn sample_policy() -> AbacPolicy {
        let mut policy = AbacPolicy::new();
        policy
            .set_actor_attribute("Doctor", "department", "cardiology")
            .set_actor_attribute("Doctor", "clearance", 3i64)
            .set_actor_attribute("Nurse", "department", "cardiology")
            .set_actor_attribute("Nurse", "clearance", 1i64)
            .set_datastore_attribute("EHR", "classification", "clinical")
            .add_rule(
                AbacRule::new("clinical-read", [Permission::Read])
                    .when_actor(AttributePredicate::Equals(
                        "department".into(),
                        "cardiology".into(),
                    ))
                    .when_actor(AttributePredicate::AtLeast("clearance".into(), 2))
                    .when_datastore(AttributePredicate::Equals(
                        "classification".into(),
                        "clinical".into(),
                    )),
            );
        policy
    }

    #[test]
    fn rules_require_every_predicate_to_hold() {
        let policy = sample_policy();
        assert!(policy.allows(&ActorId::new("Doctor"), Permission::Read, &ehr(), &diagnosis()));
        // The nurse's clearance of 1 fails the AtLeast(2) predicate.
        assert!(!policy.allows(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis()));
        // Unknown actors have no attributes and match nothing.
        assert!(!policy.allows(&ActorId::new("Ghost"), Permission::Read, &ehr(), &diagnosis()));
        // A different permission is not granted by the rule.
        assert!(!policy.allows(&ActorId::new("Doctor"), Permission::Create, &ehr(), &diagnosis()));
        // A datastore without the clinical classification is not covered.
        assert!(!policy.allows(
            &ActorId::new("Doctor"),
            Permission::Read,
            &DatastoreId::new("Appointments"),
            &diagnosis()
        ));
    }

    #[test]
    fn field_restrictions_and_presence_predicates() {
        let mut policy = AbacPolicy::new();
        policy.set_actor_attribute("Auditor", "badge", true).add_rule(
            AbacRule::new("audit-names", [Permission::Read])
                .when_actor(AttributePredicate::Present("badge".into()))
                .on_fields([FieldId::new("Name")]),
        );
        assert!(policy.allows(
            &ActorId::new("Auditor"),
            Permission::Read,
            &ehr(),
            &FieldId::new("Name")
        ));
        assert!(!policy.allows(&ActorId::new("Auditor"), Permission::Read, &ehr(), &diagnosis()));
    }

    #[test]
    fn matching_rule_explains_the_grant() {
        let policy = sample_policy();
        let rule = policy
            .matching_rule(&ActorId::new("Doctor"), Permission::Read, &ehr(), &diagnosis())
            .expect("a rule matches");
        assert_eq!(rule.name(), "clinical-read");
        assert!(rule.to_string().contains("clinical-read"));
        assert!(policy
            .matching_rule(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis())
            .is_none());
    }

    #[test]
    fn actors_with_enumerates_attributed_actors_only() {
        let policy = sample_policy();
        let readers = policy.actors_with(Permission::Read, &ehr(), &diagnosis());
        assert_eq!(readers.len(), 1);
        assert!(readers.contains(&ActorId::new("Doctor")));
        assert_eq!(policy.rule_count(), 1);
        assert!(policy.to_string().contains("1 rules"));
    }

    #[test]
    fn attribute_value_conversions_and_display() {
        assert_eq!(AttributeValue::from("x"), AttributeValue::Text("x".into()));
        assert_eq!(AttributeValue::from(true), AttributeValue::Flag(true));
        assert_eq!(AttributeValue::from(5i64), AttributeValue::Number(5));
        assert_eq!(AttributeValue::from(5i64).to_string(), "5");
        assert_eq!(
            AttributePredicate::AtLeast("clearance".into(), 2).to_string(),
            "clearance >= 2"
        );
        assert_eq!(AttributePredicate::Present("badge".into()).to_string(), "has badge");
        assert_eq!(AttributePredicate::Equals("d".into(), "x".into()).to_string(), "d == x");
    }
}
