//! The combined access policy (ACL ∪ RBAC) and policy-change descriptions.
//!
//! The LTS generator asks one question of the policy: *which actors can read
//! (or write) which fields of which datastores?* The risk analysis of Case
//! Study A additionally needs to express a **policy change** — the paper
//! reduces the Administrator's risk from Medium to Low by changing the access
//! policies — so [`PolicyDelta`] captures an editable sequence of
//! [`PolicyChange`]s that can be applied to produce a revised policy.

use crate::abac::AbacPolicy;
use crate::acl::{AccessControlList, Grant};
use crate::permission::Permission;
use crate::rbac::RbacPolicy;
use privacy_model::{ActorId, Catalog, DatastoreId, FieldId};
use std::collections::BTreeSet;
use std::fmt;

/// The access policy of the whole system: a direct ACL, an RBAC policy and an
/// optional attribute-based (ABAC) policy — the paper's "alternative forms of
/// access control" extension point.
///
/// An access is allowed if **any** component allows it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPolicy {
    acl: AccessControlList,
    rbac: RbacPolicy,
    abac: AbacPolicy,
}

impl AccessPolicy {
    /// Creates an empty policy (nobody can access anything).
    pub fn new() -> Self {
        AccessPolicy::default()
    }

    /// Creates a policy from its ACL and RBAC parts (no ABAC rules).
    pub fn from_parts(acl: AccessControlList, rbac: RbacPolicy) -> Self {
        AccessPolicy { acl, rbac, abac: AbacPolicy::new() }
    }

    /// The ABAC component.
    pub fn abac(&self) -> &AbacPolicy {
        &self.abac
    }

    /// Mutable access to the ABAC component.
    pub fn abac_mut(&mut self) -> &mut AbacPolicy {
        &mut self.abac
    }

    /// The ACL component.
    pub fn acl(&self) -> &AccessControlList {
        &self.acl
    }

    /// Mutable access to the ACL component.
    pub fn acl_mut(&mut self) -> &mut AccessControlList {
        &mut self.acl
    }

    /// The RBAC component.
    pub fn rbac(&self) -> &RbacPolicy {
        &self.rbac
    }

    /// Mutable access to the RBAC component.
    pub fn rbac_mut(&mut self) -> &mut RbacPolicy {
        &mut self.rbac
    }

    /// Returns `true` if the actor may perform the operation on the field of
    /// the datastore.
    pub fn can(
        &self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> bool {
        self.acl.allows(actor, permission, datastore, field)
            || self.rbac.allows(actor, permission, datastore, field)
            || self.abac.allows(actor, permission, datastore, field)
    }

    /// The actors that may perform the operation on the field of the
    /// datastore (union of ACL and RBAC).
    pub fn actors_with(
        &self,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> BTreeSet<ActorId> {
        let mut actors = self.acl.actors_with(permission, datastore, field);
        actors.extend(self.rbac.actors_with(permission, datastore, field));
        actors.extend(self.abac.actors_with(permission, datastore, field));
        actors
    }

    /// The fields of a datastore (according to the catalog's schema) that an
    /// actor can read.
    pub fn readable_fields(
        &self,
        actor: &ActorId,
        datastore: &DatastoreId,
        catalog: &Catalog,
    ) -> BTreeSet<FieldId> {
        catalog
            .datastore_schema(datastore)
            .map(|schema| {
                schema
                    .fields()
                    .iter()
                    .filter(|field| self.can(actor, Permission::Read, datastore, field))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Applies a policy delta, returning the number of individual changes
    /// applied.
    pub fn apply(&mut self, delta: &PolicyDelta) -> usize {
        let mut applied = 0;
        for change in delta.changes() {
            match change {
                PolicyChange::Grant(grant) => {
                    self.acl.grant(grant.clone());
                    applied += 1;
                }
                PolicyChange::Revoke { actor, permission, datastore } => {
                    applied += self.acl.revoke(actor, *permission, datastore);
                }
            }
        }
        applied
    }

    /// Returns a copy of the policy with the delta applied.
    pub fn with_applied(&self, delta: &PolicyDelta) -> AccessPolicy {
        let mut revised = self.clone();
        revised.apply(delta);
        revised
    }
}

impl fmt::Display for AccessPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "access policy: {} acl grants, {}", self.acl.len(), self.rbac)
    }
}

/// One edit to an access policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyChange {
    /// Add a direct ACL grant.
    Grant(Grant),
    /// Remove a permission from every matching direct ACL grant.
    Revoke {
        /// The actor losing the permission.
        actor: ActorId,
        /// The permission being revoked.
        permission: Permission,
        /// The datastore the revocation applies to.
        datastore: DatastoreId,
    },
}

impl fmt::Display for PolicyChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyChange::Grant(grant) => write!(f, "grant: {grant}"),
            PolicyChange::Revoke { actor, permission, datastore } => {
                write!(f, "revoke: {actor} may no longer {permission} on {datastore}")
            }
        }
    }
}

/// An ordered sequence of policy changes — the system designer's response to
/// an unacceptable risk finding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyDelta {
    changes: Vec<PolicyChange>,
}

impl PolicyDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        PolicyDelta::default()
    }

    /// Builder-style: adds a grant change.
    pub fn grant(mut self, grant: Grant) -> Self {
        self.changes.push(PolicyChange::Grant(grant));
        self
    }

    /// Builder-style: adds a revocation change.
    pub fn revoke(
        mut self,
        actor: impl Into<ActorId>,
        permission: Permission,
        datastore: impl Into<DatastoreId>,
    ) -> Self {
        self.changes.push(PolicyChange::Revoke {
            actor: actor.into(),
            permission,
            datastore: datastore.into(),
        });
        self
    }

    /// The changes in application order.
    pub fn changes(&self) -> &[PolicyChange] {
        &self.changes
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Returns `true` if the delta contains no changes.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

impl fmt::Display for PolicyDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy delta ({} changes):", self.changes.len())?;
        for change in &self.changes {
            writeln!(f, "  {change}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::FieldScope;
    use crate::rbac::{Role, RoleGrant};
    use privacy_model::{Actor, DataField, DataSchema, DatastoreDecl};

    fn ehr() -> DatastoreId {
        DatastoreId::new("EHR")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    fn sample_policy() -> AccessPolicy {
        let mut policy = AccessPolicy::new();
        policy
            .acl_mut()
            .grant(Grant::read_write_all("Doctor", "EHR"))
            .grant(Grant::read_all("Administrator", "EHR"));
        policy
            .rbac_mut()
            .add_role(Role::new("nursing").with_grant(RoleGrant::new(
                "EHR",
                FieldScope::fields([FieldId::new("Treatment")]),
                [Permission::Read],
            )))
            .unwrap();
        policy.rbac_mut().assign("Nurse", "nursing").unwrap();
        policy
    }

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Nurse")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog.add_field(DataField::other("Treatment")).unwrap();
        catalog
            .add_schema(DataSchema::new("EHRSchema", [diagnosis(), FieldId::new("Treatment")]))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog
    }

    #[test]
    fn combined_policy_unions_acl_and_rbac() {
        let policy = sample_policy();
        assert!(policy.can(&ActorId::new("Doctor"), Permission::Read, &ehr(), &diagnosis()));
        assert!(policy.can(
            &ActorId::new("Nurse"),
            Permission::Read,
            &ehr(),
            &FieldId::new("Treatment")
        ));
        assert!(!policy.can(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis()));

        let readers = policy.actors_with(Permission::Read, &ehr(), &diagnosis());
        assert_eq!(readers.len(), 2);
        let treatment_readers =
            policy.actors_with(Permission::Read, &ehr(), &FieldId::new("Treatment"));
        assert_eq!(treatment_readers.len(), 3);
    }

    #[test]
    fn readable_fields_respects_schema_and_policy() {
        let policy = sample_policy();
        let catalog = catalog();
        let nurse_fields = policy.readable_fields(&ActorId::new("Nurse"), &ehr(), &catalog);
        assert_eq!(nurse_fields.len(), 1);
        assert!(nurse_fields.contains(&FieldId::new("Treatment")));

        let doctor_fields = policy.readable_fields(&ActorId::new("Doctor"), &ehr(), &catalog);
        assert_eq!(doctor_fields.len(), 2);

        // Unknown datastore yields an empty set rather than a panic.
        let none =
            policy.readable_fields(&ActorId::new("Doctor"), &DatastoreId::new("Nowhere"), &catalog);
        assert!(none.is_empty());
    }

    #[test]
    fn policy_delta_applies_case_study_a_change() {
        let policy = sample_policy();
        assert!(policy.can(&ActorId::new("Administrator"), Permission::Read, &ehr(), &diagnosis()));

        let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
        let revised = policy.with_applied(&delta);

        assert!(!revised.can(
            &ActorId::new("Administrator"),
            Permission::Read,
            &ehr(),
            &diagnosis()
        ));
        // The original policy is untouched.
        assert!(policy.can(&ActorId::new("Administrator"), Permission::Read, &ehr(), &diagnosis()));
        // The doctor keeps access.
        assert!(revised.can(&ActorId::new("Doctor"), Permission::Read, &ehr(), &diagnosis()));
    }

    #[test]
    fn policy_delta_grant_and_counts() {
        let mut policy = AccessPolicy::new();
        let delta = PolicyDelta::new().grant(Grant::read_all("Researcher", "AnonEHR")).revoke(
            "Researcher",
            Permission::Read,
            "EHR",
        );
        assert_eq!(delta.len(), 2);
        assert!(!delta.is_empty());
        // The revoke matches no grant so only the grant is applied.
        let applied = policy.apply(&delta);
        assert_eq!(applied, 1);
        assert!(policy.can(
            &ActorId::new("Researcher"),
            Permission::Read,
            &DatastoreId::new("AnonEHR"),
            &FieldId::new("Weight_anon")
        ));
    }

    #[test]
    fn displays_are_informative() {
        let policy = sample_policy();
        assert!(policy.to_string().contains("2 acl grants"));
        let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
        let text = delta.to_string();
        assert!(text.contains("policy delta (1 changes)"));
        assert!(text.contains("Administrator may no longer read on EHR"));
        let grant_change = PolicyChange::Grant(Grant::read_all("A", "S"));
        assert!(grant_change.to_string().starts_with("grant:"));
    }

    #[test]
    fn empty_policy_denies_everything() {
        let policy = AccessPolicy::new();
        assert!(!policy.can(&ActorId::new("Anyone"), Permission::Read, &ehr(), &diagnosis()));
        assert!(policy.actors_with(Permission::Read, &ehr(), &diagnosis()).is_empty());
    }
}
