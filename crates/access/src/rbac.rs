//! Role-based access control.
//!
//! In larger deployments permissions are not granted to actors directly but
//! to **roles**; actors are then assigned one or more roles. Roles may
//! inherit from parent roles (a senior doctor inherits everything a doctor
//! may do). The effective permission check flattens the role hierarchy.

use crate::permission::{FieldScope, Permission};
use privacy_model::{ActorId, DatastoreId, FieldId, ModelError, RoleId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A grant attached to a role rather than to an individual actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleGrant {
    datastore: DatastoreId,
    scope: FieldScope,
    permissions: BTreeSet<Permission>,
}

impl RoleGrant {
    /// Creates a role grant.
    pub fn new(
        datastore: impl Into<DatastoreId>,
        scope: FieldScope,
        permissions: impl IntoIterator<Item = Permission>,
    ) -> Self {
        RoleGrant {
            datastore: datastore.into(),
            scope,
            permissions: permissions.into_iter().collect(),
        }
    }

    /// The datastore the grant applies to.
    pub fn datastore(&self) -> &DatastoreId {
        &self.datastore
    }

    /// The field scope of the grant.
    pub fn scope(&self) -> &FieldScope {
        &self.scope
    }

    /// The granted permissions.
    pub fn permissions(&self) -> &BTreeSet<Permission> {
        &self.permissions
    }

    /// Returns `true` if this grant allows `permission` on `field` of
    /// `datastore`.
    pub fn allows(&self, permission: Permission, datastore: &DatastoreId, field: &FieldId) -> bool {
        &self.datastore == datastore
            && self.permissions.contains(&permission)
            && self.scope.covers(field)
    }
}

impl fmt::Display for RoleGrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let perms: Vec<String> = self.permissions.iter().map(|p| p.to_string()).collect();
        write!(f, "may {} on {}:{}", perms.join("/"), self.datastore, self.scope)
    }
}

/// A role: a named bundle of grants, optionally inheriting from parents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Role {
    id: RoleId,
    grants: Vec<RoleGrant>,
    parents: BTreeSet<RoleId>,
}

impl Role {
    /// Creates an empty role.
    pub fn new(id: impl Into<RoleId>) -> Self {
        Role { id: id.into(), grants: Vec::new(), parents: BTreeSet::new() }
    }

    /// Builder-style: adds a grant to the role.
    pub fn with_grant(mut self, grant: RoleGrant) -> Self {
        self.grants.push(grant);
        self
    }

    /// Builder-style: declares a parent role whose grants are inherited.
    pub fn inherits(mut self, parent: impl Into<RoleId>) -> Self {
        self.parents.insert(parent.into());
        self
    }

    /// The role identifier.
    pub fn id(&self) -> &RoleId {
        &self.id
    }

    /// The role's direct grants.
    pub fn grants(&self) -> &[RoleGrant] {
        &self.grants
    }

    /// The role's direct parents.
    pub fn parents(&self) -> &BTreeSet<RoleId> {
        &self.parents
    }
}

/// A role-based access-control policy: role definitions plus actor → role
/// assignments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RbacPolicy {
    roles: BTreeMap<RoleId, Role>,
    assignments: BTreeMap<ActorId, BTreeSet<RoleId>>,
}

impl RbacPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        RbacPolicy::default()
    }

    /// Defines a role.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a role with the same id exists.
    pub fn add_role(&mut self, role: Role) -> Result<&mut Self, ModelError> {
        if self.roles.contains_key(role.id()) {
            return Err(ModelError::duplicate("role", role.id().as_str()));
        }
        self.roles.insert(role.id().clone(), role);
        Ok(self)
    }

    /// Assigns a role to an actor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] if the role has not been defined.
    pub fn assign(
        &mut self,
        actor: impl Into<ActorId>,
        role: impl Into<RoleId>,
    ) -> Result<&mut Self, ModelError> {
        let role = role.into();
        if !self.roles.contains_key(&role) {
            return Err(ModelError::unknown("role", role.as_str()));
        }
        self.assignments.entry(actor.into()).or_default().insert(role);
        Ok(self)
    }

    /// Removes a role assignment. Returns `true` if the assignment existed.
    pub fn unassign(&mut self, actor: &ActorId, role: &RoleId) -> bool {
        if let Some(roles) = self.assignments.get_mut(actor) {
            let removed = roles.remove(role);
            if roles.is_empty() {
                self.assignments.remove(actor);
            }
            removed
        } else {
            false
        }
    }

    /// Looks up a role definition.
    pub fn role(&self, id: &RoleId) -> Option<&Role> {
        self.roles.get(id)
    }

    /// The roles directly assigned to an actor.
    pub fn roles_of(&self, actor: &ActorId) -> BTreeSet<RoleId> {
        self.assignments.get(actor).cloned().unwrap_or_default()
    }

    /// The roles assigned to an actor including inherited parent roles.
    pub fn effective_roles_of(&self, actor: &ActorId) -> BTreeSet<RoleId> {
        let mut effective = BTreeSet::new();
        let mut stack: Vec<RoleId> = self.roles_of(actor).into_iter().collect();
        while let Some(role_id) = stack.pop() {
            if !effective.insert(role_id.clone()) {
                continue;
            }
            if let Some(role) = self.roles.get(&role_id) {
                for parent in role.parents() {
                    if !effective.contains(parent) {
                        stack.push(parent.clone());
                    }
                }
            }
        }
        effective
    }

    /// Returns `true` if the actor's effective roles allow the access.
    pub fn allows(
        &self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> bool {
        self.effective_roles_of(actor).iter().any(|role_id| {
            self.roles
                .get(role_id)
                .map(|role| role.grants().iter().any(|g| g.allows(permission, datastore, field)))
                .unwrap_or(false)
        })
    }

    /// The actors whose effective roles allow the access.
    pub fn actors_with(
        &self,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> BTreeSet<ActorId> {
        self.assignments
            .keys()
            .filter(|actor| self.allows(actor, permission, datastore, field))
            .cloned()
            .collect()
    }

    /// Number of defined roles.
    pub fn role_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of actors with at least one assignment.
    pub fn assigned_actor_count(&self) -> usize {
        self.assignments.len()
    }

    /// Iterates over every defined role in identifier order.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.roles.values()
    }

    /// Iterates over every `(actor, role)` assignment pair in actor order.
    pub fn assignments(&self) -> impl Iterator<Item = (&ActorId, &RoleId)> {
        self.assignments
            .iter()
            .flat_map(|(actor, roles)| roles.iter().map(move |role| (actor, role)))
    }

    /// Checks that every parent role referenced by a role definition exists.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] naming the first missing parent.
    pub fn validate(&self) -> Result<(), ModelError> {
        for role in self.roles.values() {
            for parent in role.parents() {
                if !self.roles.contains_key(parent) {
                    return Err(ModelError::unknown("role", parent.as_str()));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for RbacPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rbac: {} roles, {} assigned actors", self.roles.len(), self.assignments.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ehr() -> DatastoreId {
        DatastoreId::new("EHR")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    fn sample_policy() -> RbacPolicy {
        let mut rbac = RbacPolicy::new();
        rbac.add_role(Role::new("clinician").with_grant(RoleGrant::new(
            "EHR",
            FieldScope::all(),
            [Permission::Read],
        )))
        .unwrap();
        rbac.add_role(
            Role::new("senior-clinician").inherits("clinician").with_grant(RoleGrant::new(
                "EHR",
                FieldScope::all(),
                [Permission::Create],
            )),
        )
        .unwrap();
        rbac.add_role(Role::new("clerical").with_grant(RoleGrant::new(
            "Appointments",
            FieldScope::all(),
            [Permission::Read, Permission::Create],
        )))
        .unwrap();
        rbac.assign("Doctor", "senior-clinician").unwrap();
        rbac.assign("Nurse", "clinician").unwrap();
        rbac.assign("Receptionist", "clerical").unwrap();
        rbac
    }

    #[test]
    fn duplicate_roles_and_unknown_assignments_are_rejected() {
        let mut rbac = sample_policy();
        assert!(rbac.add_role(Role::new("clinician")).is_err());
        assert!(rbac.assign("Doctor", "nonexistent").is_err());
    }

    #[test]
    fn direct_grants_allow_access() {
        let rbac = sample_policy();
        assert!(rbac.allows(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis()));
        assert!(!rbac.allows(&ActorId::new("Nurse"), Permission::Create, &ehr(), &diagnosis()));
        assert!(!rbac.allows(
            &ActorId::new("Receptionist"),
            Permission::Read,
            &ehr(),
            &diagnosis()
        ));
    }

    #[test]
    fn inherited_grants_allow_access() {
        let rbac = sample_policy();
        // The doctor is only assigned senior-clinician, which inherits read
        // from clinician.
        assert!(rbac.allows(&ActorId::new("Doctor"), Permission::Read, &ehr(), &diagnosis()));
        assert!(rbac.allows(&ActorId::new("Doctor"), Permission::Create, &ehr(), &diagnosis()));
        let effective = rbac.effective_roles_of(&ActorId::new("Doctor"));
        assert_eq!(effective.len(), 2);
    }

    #[test]
    fn cyclic_inheritance_terminates() {
        let mut rbac = RbacPolicy::new();
        rbac.add_role(Role::new("a").inherits("b")).unwrap();
        rbac.add_role(Role::new("b").inherits("a").with_grant(RoleGrant::new(
            "EHR",
            FieldScope::all(),
            [Permission::Read],
        )))
        .unwrap();
        rbac.assign("X", "a").unwrap();
        // Cycle a -> b -> a must not loop forever and permissions from both
        // roles apply.
        assert!(rbac.allows(&ActorId::new("X"), Permission::Read, &ehr(), &diagnosis()));
        assert_eq!(rbac.effective_roles_of(&ActorId::new("X")).len(), 2);
    }

    #[test]
    fn unassign_removes_access() {
        let mut rbac = sample_policy();
        assert!(rbac.unassign(&ActorId::new("Nurse"), &RoleId::new("clinician")));
        assert!(!rbac.unassign(&ActorId::new("Nurse"), &RoleId::new("clinician")));
        assert!(!rbac.allows(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis()));
        assert_eq!(rbac.assigned_actor_count(), 2);
    }

    #[test]
    fn actors_with_lists_every_permitted_actor() {
        let rbac = sample_policy();
        let readers = rbac.actors_with(Permission::Read, &ehr(), &diagnosis());
        assert_eq!(readers.len(), 2);
        assert!(readers.contains(&ActorId::new("Doctor")));
        assert!(readers.contains(&ActorId::new("Nurse")));
    }

    #[test]
    fn validation_detects_missing_parent_roles() {
        let mut rbac = RbacPolicy::new();
        rbac.add_role(Role::new("child").inherits("ghost")).unwrap();
        assert!(matches!(rbac.validate(), Err(ModelError::Unknown { .. })));
        assert!(sample_policy().validate().is_ok());
    }

    #[test]
    fn counters_and_display() {
        let rbac = sample_policy();
        assert_eq!(rbac.role_count(), 3);
        assert_eq!(rbac.assigned_actor_count(), 3);
        assert_eq!(rbac.to_string(), "rbac: 3 roles, 3 assigned actors");
        assert!(rbac.role(&RoleId::new("clinician")).is_some());
        assert!(rbac.role(&RoleId::new("missing")).is_none());
        let grant = RoleGrant::new("EHR", FieldScope::all(), [Permission::Read]);
        assert_eq!(grant.to_string(), "may read on EHR:*");
    }
}
