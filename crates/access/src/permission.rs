//! Permissions and field scopes.

use privacy_model::FieldId;
use std::collections::BTreeSet;
use std::fmt;

/// An operation an actor may be permitted to perform on datastore fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Permission {
    /// Query / display individual fields from the datastore.
    Read,
    /// Write new values into the datastore.
    Create,
    /// Remove values from the datastore.
    Delete,
    /// Pass data obtained from the datastore on to another actor.
    Disclose,
}

impl Permission {
    /// All permissions.
    pub const ALL: [Permission; 4] =
        [Permission::Read, Permission::Create, Permission::Delete, Permission::Disclose];
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Permission::Read => "read",
            Permission::Create => "create",
            Permission::Delete => "delete",
            Permission::Disclose => "disclose",
        };
        f.write_str(name)
    }
}

/// The set of fields a grant applies to: either every field of the datastore
/// or an explicit subset.
///
/// The paper assumes *"datastore interfaces that support querying and display
/// of individual fields (as opposed to coarse-grained records)"*, so grants
/// are field-granular; `FieldScope::all()` is a convenience for whole-store
/// grants.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FieldScope {
    /// The grant applies to every field of the datastore's schema.
    #[default]
    All,
    /// The grant applies only to the listed fields.
    Fields(BTreeSet<FieldId>),
}

impl FieldScope {
    /// A scope covering every field.
    pub fn all() -> Self {
        FieldScope::All
    }

    /// A scope covering only the given fields.
    pub fn fields(fields: impl IntoIterator<Item = FieldId>) -> Self {
        FieldScope::Fields(fields.into_iter().collect())
    }

    /// Returns `true` if the scope covers the given field.
    pub fn covers(&self, field: &FieldId) -> bool {
        match self {
            FieldScope::All => true,
            FieldScope::Fields(fields) => fields.contains(field),
        }
    }

    /// Returns `true` if the scope covers every field (is [`FieldScope::All`]).
    pub fn is_all(&self) -> bool {
        matches!(self, FieldScope::All)
    }

    /// The explicit field set, if the scope is not [`FieldScope::All`].
    pub fn explicit_fields(&self) -> Option<&BTreeSet<FieldId>> {
        match self {
            FieldScope::All => None,
            FieldScope::Fields(fields) => Some(fields),
        }
    }
}

impl fmt::Display for FieldScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldScope::All => f.write_str("*"),
            FieldScope::Fields(fields) => {
                f.write_str("{")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scope_covers_everything() {
        let scope = FieldScope::all();
        assert!(scope.is_all());
        assert!(scope.covers(&FieldId::new("anything")));
        assert!(scope.explicit_fields().is_none());
        assert_eq!(scope.to_string(), "*");
        assert_eq!(FieldScope::default(), FieldScope::All);
    }

    #[test]
    fn explicit_scope_covers_only_listed_fields() {
        let scope = FieldScope::fields([FieldId::new("Name"), FieldId::new("DOB")]);
        assert!(!scope.is_all());
        assert!(scope.covers(&FieldId::new("Name")));
        assert!(!scope.covers(&FieldId::new("Diagnosis")));
        assert_eq!(scope.explicit_fields().unwrap().len(), 2);
        assert_eq!(scope.to_string(), "{DOB, Name}");
    }

    #[test]
    fn permission_display_and_all() {
        assert_eq!(Permission::Read.to_string(), "read");
        assert_eq!(Permission::Disclose.to_string(), "disclose");
        assert_eq!(Permission::ALL.len(), 4);
    }

    #[test]
    fn permissions_are_ordered_for_set_storage() {
        let set: BTreeSet<Permission> =
            [Permission::Delete, Permission::Read].into_iter().collect();
        assert!(set.contains(&Permission::Read));
        assert!(!set.contains(&Permission::Create));
    }
}
