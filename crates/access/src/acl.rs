//! Access-control lists: direct actor → datastore grants.

use crate::permission::{FieldScope, Permission};
use privacy_model::{ActorId, DatastoreId, FieldId};
use std::collections::BTreeSet;
use std::fmt;

/// One access-control grant: an actor may perform a set of operations on a
/// scope of fields within a datastore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    actor: ActorId,
    datastore: DatastoreId,
    scope: FieldScope,
    permissions: BTreeSet<Permission>,
}

impl Grant {
    /// Creates a grant.
    pub fn new(
        actor: impl Into<ActorId>,
        datastore: impl Into<DatastoreId>,
        scope: FieldScope,
        permissions: impl IntoIterator<Item = Permission>,
    ) -> Self {
        Grant {
            actor: actor.into(),
            datastore: datastore.into(),
            scope,
            permissions: permissions.into_iter().collect(),
        }
    }

    /// Convenience constructor for a whole-store read grant.
    pub fn read_all(actor: impl Into<ActorId>, datastore: impl Into<DatastoreId>) -> Self {
        Grant::new(actor, datastore, FieldScope::all(), [Permission::Read])
    }

    /// Convenience constructor for a whole-store read+create grant.
    pub fn read_write_all(actor: impl Into<ActorId>, datastore: impl Into<DatastoreId>) -> Self {
        Grant::new(actor, datastore, FieldScope::all(), [Permission::Read, Permission::Create])
    }

    /// The actor receiving the grant.
    pub fn actor(&self) -> &ActorId {
        &self.actor
    }

    /// The datastore the grant applies to.
    pub fn datastore(&self) -> &DatastoreId {
        &self.datastore
    }

    /// The field scope of the grant.
    pub fn scope(&self) -> &FieldScope {
        &self.scope
    }

    /// The granted permissions.
    pub fn permissions(&self) -> &BTreeSet<Permission> {
        &self.permissions
    }

    /// Returns `true` if the grant allows the actor to perform `permission`
    /// on `field` of `datastore`.
    pub fn allows(
        &self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> bool {
        &self.actor == actor
            && &self.datastore == datastore
            && self.permissions.contains(&permission)
            && self.scope.covers(field)
    }
}

impl fmt::Display for Grant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let perms: Vec<String> = self.permissions.iter().map(|p| p.to_string()).collect();
        write!(f, "{} may {} on {}:{}", self.actor, perms.join("/"), self.datastore, self.scope)
    }
}

/// A list of [`Grant`]s with query and revocation helpers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessControlList {
    grants: Vec<Grant>,
}

impl AccessControlList {
    /// Creates an empty list.
    pub fn new() -> Self {
        AccessControlList::default()
    }

    /// Adds a grant.
    pub fn grant(&mut self, grant: Grant) -> &mut Self {
        self.grants.push(grant);
        self
    }

    /// Builder-style variant of [`AccessControlList::grant`].
    pub fn with_grant(mut self, grant: Grant) -> Self {
        self.grants.push(grant);
        self
    }

    /// Removes every grant that gives `actor` the `permission` on
    /// `datastore`. Grants with an explicit field scope are narrowed rather
    /// than removed when `fields` is provided.
    ///
    /// Returns the number of grants removed or narrowed.
    pub fn revoke(
        &mut self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
    ) -> usize {
        let mut affected = 0;
        self.grants.retain_mut(|grant| {
            if grant.actor == *actor
                && grant.datastore == *datastore
                && grant.permissions.contains(&permission)
            {
                affected += 1;
                grant.permissions.remove(&permission);
                !grant.permissions.is_empty()
            } else {
                true
            }
        });
        affected
    }

    /// The grants in insertion order.
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    /// Number of grants.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Returns `true` if any grant allows the access.
    pub fn allows(
        &self,
        actor: &ActorId,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> bool {
        self.grants.iter().any(|g| g.allows(actor, permission, datastore, field))
    }

    /// The actors that hold `permission` over `field` in `datastore`.
    pub fn actors_with(
        &self,
        permission: Permission,
        datastore: &DatastoreId,
        field: &FieldId,
    ) -> BTreeSet<ActorId> {
        self.grants
            .iter()
            .filter(|g| {
                g.datastore == *datastore
                    && g.permissions.contains(&permission)
                    && g.scope.covers(field)
            })
            .map(|g| g.actor.clone())
            .collect()
    }

    /// Iterates over the grants held by an actor.
    pub fn grants_of<'a>(&'a self, actor: &'a ActorId) -> impl Iterator<Item = &'a Grant> + 'a {
        self.grants.iter().filter(move |g| &g.actor == actor)
    }
}

impl FromIterator<Grant> for AccessControlList {
    fn from_iter<T: IntoIterator<Item = Grant>>(iter: T) -> Self {
        AccessControlList { grants: iter.into_iter().collect() }
    }
}

impl Extend<Grant> for AccessControlList {
    fn extend<T: IntoIterator<Item = Grant>>(&mut self, iter: T) {
        self.grants.extend(iter);
    }
}

impl fmt::Display for AccessControlList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "acl ({} grants):", self.grants.len())?;
        for grant in &self.grants {
            writeln!(f, "  {grant}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ehr() -> DatastoreId {
        DatastoreId::new("EHR")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    #[test]
    fn grant_allows_matching_access_only() {
        let grant =
            Grant::new("Doctor", "EHR", FieldScope::fields([diagnosis()]), [Permission::Read]);
        assert!(grant.allows(&ActorId::new("Doctor"), Permission::Read, &ehr(), &diagnosis()));
        assert!(!grant.allows(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis()));
        assert!(!grant.allows(&ActorId::new("Doctor"), Permission::Create, &ehr(), &diagnosis()));
        assert!(!grant.allows(
            &ActorId::new("Doctor"),
            Permission::Read,
            &DatastoreId::new("Appointments"),
            &diagnosis()
        ));
        assert!(!grant.allows(
            &ActorId::new("Doctor"),
            Permission::Read,
            &ehr(),
            &FieldId::new("Name")
        ));
    }

    #[test]
    fn convenience_constructors_cover_all_fields() {
        let read = Grant::read_all("Admin", "EHR");
        assert!(read.allows(&ActorId::new("Admin"), Permission::Read, &ehr(), &diagnosis()));
        assert!(!read.allows(&ActorId::new("Admin"), Permission::Create, &ehr(), &diagnosis()));

        let rw = Grant::read_write_all("Doctor", "EHR");
        assert!(rw.allows(&ActorId::new("Doctor"), Permission::Create, &ehr(), &diagnosis()));
        assert_eq!(rw.permissions().len(), 2);
    }

    #[test]
    fn acl_queries_union_over_grants() {
        let acl = AccessControlList::new()
            .with_grant(Grant::read_all("Administrator", "EHR"))
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::new(
                "Nurse",
                "EHR",
                FieldScope::fields([FieldId::new("Treatment")]),
                [Permission::Read],
            ));

        assert!(acl.allows(&ActorId::new("Administrator"), Permission::Read, &ehr(), &diagnosis()));
        assert!(!acl.allows(&ActorId::new("Nurse"), Permission::Read, &ehr(), &diagnosis()));
        assert!(acl.allows(
            &ActorId::new("Nurse"),
            Permission::Read,
            &ehr(),
            &FieldId::new("Treatment")
        ));

        let readers = acl.actors_with(Permission::Read, &ehr(), &diagnosis());
        assert_eq!(readers.len(), 2);
        assert!(readers.contains(&ActorId::new("Administrator")));
        assert!(readers.contains(&ActorId::new("Doctor")));

        assert_eq!(acl.grants_of(&ActorId::new("Doctor")).count(), 1);
        assert_eq!(acl.len(), 3);
    }

    #[test]
    fn revoke_removes_permission_and_prunes_empty_grants() {
        let mut acl = AccessControlList::new()
            .with_grant(Grant::read_all("Administrator", "EHR"))
            .with_grant(Grant::read_write_all("Doctor", "EHR"));

        // This is exactly the policy change of Case Study A: remove the
        // Administrator's read access to the EHR datastore.
        let affected = acl.revoke(&ActorId::new("Administrator"), Permission::Read, &ehr());
        assert_eq!(affected, 1);
        assert!(!acl.allows(
            &ActorId::new("Administrator"),
            Permission::Read,
            &ehr(),
            &diagnosis()
        ));
        // The read-only grant has become empty and is pruned entirely.
        assert_eq!(acl.len(), 1);

        // Revoking read from the doctor keeps their create permission.
        let affected = acl.revoke(&ActorId::new("Doctor"), Permission::Read, &ehr());
        assert_eq!(affected, 1);
        assert_eq!(acl.len(), 1);
        assert!(acl.allows(&ActorId::new("Doctor"), Permission::Create, &ehr(), &diagnosis()));

        // Revoking something that was never granted affects nothing.
        assert_eq!(acl.revoke(&ActorId::new("Doctor"), Permission::Delete, &ehr()), 0);
    }

    #[test]
    fn collect_and_extend_grants() {
        let mut acl: AccessControlList =
            [Grant::read_all("A", "S"), Grant::read_all("B", "S")].into_iter().collect();
        acl.extend([Grant::read_all("C", "S")]);
        assert_eq!(acl.len(), 3);
        assert!(!acl.is_empty());
    }

    #[test]
    fn display_lists_grants() {
        let acl = AccessControlList::new().with_grant(Grant::read_all("Admin", "EHR"));
        let text = acl.to_string();
        assert!(text.contains("acl (1 grants)"));
        assert!(text.contains("Admin may read on EHR:*"));
    }
}
