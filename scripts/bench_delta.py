#!/usr/bin/env python3
"""Diff a CI bench report against its checked-in baseline.

Usage: bench_delta.py BASELINE.json REPORT.json

Prints a GitHub-flavoured-markdown ratio table (one section per row array
in the reports, rows matched by their "name" field) intended for
``$GITHUB_STEP_SUMMARY``. Purely informational: the bench binaries' own
gate flags are the enforcement, so this script never exits non-zero — a
missing or unparsable file, a baseline name of "" (legs with no checked-in
baseline), or mismatched schemas all degrade to an explanatory line.

Quick CI runs measure scaled-down scenarios, so absolute ratios against the
full-scale baseline are expected to be far from 1.0 for size-dependent
columns (events, bytes); the per-unit and speedup columns are the ones
worth reading.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"> bench-delta: cannot read `{path}`: {error}")
        return None


def numeric_keys(rows):
    keys = []
    for row in rows:
        for key, value in row.items():
            if key != "name" and isinstance(value, (int, float)) and key not in keys:
                keys.append(key)
    return keys


def diff_rows(title, base_rows, ci_rows):
    base_by_name = {r.get("name"): r for r in base_rows if isinstance(r, dict)}
    ci_by_name = {r.get("name"): r for r in ci_rows if isinstance(r, dict)}
    shared = [name for name in ci_by_name if name in base_by_name and name is not None]
    if not shared:
        print(f"> bench-delta: no `{title}` rows shared with the baseline "
              f"(baseline: {sorted(base_by_name)}, ci: {sorted(ci_by_name)})")
        return
    keys = [k for k in numeric_keys([ci_by_name[n] for n in shared])
            if any(k in base_by_name[n] for n in shared)]
    print(f"#### {title}")
    print()
    print("| row | metric | baseline | ci | ratio |")
    print("|---|---|---:|---:|---:|")
    for name in shared:
        base, ci = base_by_name[name], ci_by_name[name]
        for key in keys:
            if key not in base or key not in ci:
                continue
            b, c = float(base[key]), float(ci[key])
            ratio = f"{c / b:.2f}x" if b else "n/a"
            print(f"| {name} | {key} | {base[key]} | {ci[key]} | {ratio} |")
    print()


def main(argv):
    if len(argv) != 3:
        print("> bench-delta: usage: bench_delta.py BASELINE.json REPORT.json")
        return 0
    baseline_path, report_path = argv[1], argv[2]
    print("### Bench delta vs checked-in baseline")
    print()
    if not baseline_path:
        print("> bench-delta: this leg has no checked-in baseline to diff against")
        return 0
    baseline, report = load(baseline_path), load(report_path)
    if baseline is None or report is None:
        return 0
    print(f"`{report_path}` (quick CI run) vs `{baseline_path}` (full-scale baseline) — "
          "size-dependent columns are expected to differ; read the per-unit and "
          "speedup columns.")
    print()
    compared = False
    for key, base_value in baseline.items():
        ci_value = report.get(key)
        if (isinstance(base_value, list) and isinstance(ci_value, list)
                and all(isinstance(r, dict) for r in base_value + ci_value)):
            diff_rows(key, base_value, ci_value)
            compared = True
    if not compared:
        print("> bench-delta: the reports share no row arrays to compare")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except Exception as error:  # pragma: no cover — never fail the CI job
        print(f"> bench-delta: internal error: {error}")
        sys.exit(0)
