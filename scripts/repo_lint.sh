#!/usr/bin/env sh
# Repository lint: invariants that are about the *tree*, not the code.
#
# 1. Every checked-in bench baseline (BENCH_*.json at the repo root) must
#    carry the `"forced_baseline": true` provenance marker that
#    `privacy_bench::write_report` stamps into a baseline recorded with
#    `--force-baseline` — a baseline that lacks it was hand-edited or
#    written by some path that bypassed the deliberate re-record flag.
# 2. Every checked-in baseline must be a full run (`"quick": false`): the
#    regression floors CI enforces are only meaningful against full-scale
#    numbers, never against a --quick smoke accidentally promoted.
# 3. CI scratch reports (*_ci.json) must not be committed: their names are
#    exactly what the bench smokes write on every run, so a committed copy
#    would be silently clobbered and diff-spammed forever.
#
# Run from anywhere; exits non-zero with one line per violation.

set -u
root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for file in "$root"/BENCH_*.json; do
    [ -e "$file" ] || continue
    name="$(basename "$file")"
    case "$name" in
    *_ci.json)
        echo "repo-lint: $name is a CI scratch report and must not be committed" >&2
        status=1
        continue
        ;;
    esac
    if ! grep -q '"forced_baseline": true' "$file"; then
        echo "repo-lint: $name lacks the \"forced_baseline\" provenance marker — re-record it \
with --force-baseline instead of editing or copying it" >&2
        status=1
    fi
    if ! grep -q '"quick": false' "$file"; then
        echo "repo-lint: $name is not a full run (\"quick\": false) — baselines must be recorded \
without --quick" >&2
        status=1
    fi
done

for file in "$root"/CHAOS_*.json; do
    [ -e "$file" ] || continue
    echo "repo-lint: $(basename "$file") is a CI scratch report and must not be committed" >&2
    status=1
done

[ "$status" -eq 0 ] && echo "repo-lint: ok"
exit "$status"
