#!/usr/bin/env sh
# Repository lint: invariants that are about the *tree*, not the code.
#
# 1. Every checked-in bench baseline (BENCH_*.json at the repo root) must
#    carry the `"forced_baseline": true` provenance marker that
#    `privacy_bench::write_report` stamps into a baseline recorded with
#    `--force-baseline` — a baseline that lacks it was hand-edited or
#    written by some path that bypassed the deliberate re-record flag.
# 2. Every checked-in baseline must be a full run (`"quick": false`): the
#    regression floors CI enforces are only meaningful against full-scale
#    numbers, never against a --quick smoke accidentally promoted.
# 3. CI scratch reports (*_ci.json) must not be committed: their names are
#    exactly what the bench smokes write on every run, so a committed copy
#    would be silently clobbered and diff-spammed forever.
# 4. Every checked-in baseline must parse as JSON (python3 json.load): a
#    truncated or hand-mangled report would otherwise only surface when the
#    delta tooling reads it.
# 5. Format-version bumps must ship their compatibility test: when
#    SNAPSHOT_VERSION is N, some test in crates/runtime must name
#    `snapshot_v{N-1}`, and when CHECKPOINT_VERSION is N, some test in
#    crates/distrib must name `checkpoint_v{N-1}` — the grep-level guarantee
#    that bumping a version without pinning the old decode path fails CI.
#
# Run from anywhere; exits non-zero with one line per violation.

set -u
root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for file in "$root"/BENCH_*.json; do
    [ -e "$file" ] || continue
    name="$(basename "$file")"
    case "$name" in
    *_ci.json)
        echo "repo-lint: $name is a CI scratch report and must not be committed" >&2
        status=1
        continue
        ;;
    esac
    if ! grep -q '"forced_baseline": true' "$file"; then
        echo "repo-lint: $name lacks the \"forced_baseline\" provenance marker — re-record it \
with --force-baseline instead of editing or copying it" >&2
        status=1
    fi
    if ! grep -q '"quick": false' "$file"; then
        echo "repo-lint: $name is not a full run (\"quick\": false) — baselines must be recorded \
without --quick" >&2
        status=1
    fi
done

for file in "$root"/CHAOS_*.json; do
    [ -e "$file" ] || continue
    echo "repo-lint: $(basename "$file") is a CI scratch report and must not be committed" >&2
    status=1
done

# 4. Baselines must parse as JSON.
if command -v python3 >/dev/null 2>&1; then
    for file in "$root"/BENCH_*.json; do
        [ -e "$file" ] || continue
        if ! python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$file" \
            >/dev/null 2>&1; then
            echo "repo-lint: $(basename "$file") is not valid JSON" >&2
            status=1
        fi
    done
else
    echo "repo-lint: warning: python3 unavailable, skipping baseline JSON validation" >&2
fi

# 5. Version bumps must ship their compatibility test.
check_version_compat() {
    # $1 constant name, $2 file defining it, $3 test-name prefix,
    # $4 directory the compatibility test must live under.
    constant="$1" source="$2" prefix="$3" dir="$4"
    version="$(sed -n "s/^pub const $constant: u32 = \([0-9][0-9]*\);.*/\1/p" "$root/$source")"
    if [ -z "$version" ]; then
        echo "repo-lint: cannot extract $constant from $source — the version-compat guard \
needs the 'pub const $constant: u32 = N;' form" >&2
        status=1
        return
    fi
    [ "$version" -le 1 ] && return
    prev=$((version - 1))
    if ! grep -rq "${prefix}${prev}" "$root/$dir"; then
        echo "repo-lint: $constant is $version but no test under $dir names \
'${prefix}${prev}' — a version bump must keep a compatibility test proving \
version $prev still decodes" >&2
        status=1
    fi
}
check_version_compat SNAPSHOT_VERSION crates/runtime/src/snapshot.rs snapshot_v crates/runtime
check_version_compat CHECKPOINT_VERSION crates/distrib/src/wire.rs checkpoint_v crates/distrib

[ "$status" -eq 0 ] && echo "repo-lint: ok"
exit "$status"
